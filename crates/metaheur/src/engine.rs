//! The Algorithm 1 engine: one independent population per spot, with all
//! scoring requests batched across spots.

use crate::evaluator::BatchEvaluator;
use crate::params::{
    improved_count, EndCondition, ImproveStrategy, MetaheuristicParams, SelectStrategy,
};
use vsmath::RngStream;
use vsmol::{conformation::score_cmp, Conformation, Spot};
use vstrace::{Event, Trace};

/// Outcome of one metaheuristic execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best conformation found anywhere on the surface.
    pub best: Conformation,
    /// Best conformation per spot (index-aligned with the input spots).
    pub best_per_spot: Vec<Conformation>,
    /// Total scoring evaluations performed.
    pub evaluations: u64,
    /// Generations actually run (≤ the configured maximum; 0 for M4).
    pub generations_run: usize,
    /// Items per scoring batch, in submission order. This is the workload
    /// trace the device schedulers in `vsched` partition and replay.
    ///
    /// Submission order is part of the contract: under
    /// [`EngineExec::Lockstep`](crate::pipeline::EngineExec) batches appear
    /// in the engine's program order (initialize, then per generation:
    /// offspring, then one batch per improve step). Under
    /// [`EngineExec::Pipelined`](crate::pipeline::EngineExec) batches appear
    /// in evaluator-flush order — coalesced across spots at different
    /// generations — which is deterministic for a fixed seed, spot set and
    /// pipeline config, but is a *different* order than lockstep.
    /// `vsched::replay` consumers must not assume the two orders match;
    /// only the multiset sum (`evaluations`) is mode-invariant.
    pub batch_trace: Vec<u64>,
    /// Global best score after initialization and after each generation.
    pub best_history: Vec<f64>,
    /// Mean per-spot translation diversity (Å) after initialization and
    /// after each generation — the premature-convergence diagnostic
    /// ([`crate::diversity`]). Engines without populations (Tabu) or with
    /// implicit ones leave this empty.
    pub diversity_history: Vec<f64>,
}

/// Execute a parameterized metaheuristic (Algorithm 1) over `spots`.
///
/// Deterministic: each spot draws from its own RNG stream derived from
/// `seed`, so results do not depend on how work is later partitioned across
/// devices.
///
/// ```
/// use metaheur::{m1, run, SyntheticEvaluator};
/// use vsmath::Vec3;
/// use vsmol::Spot;
///
/// let spots = vec![Spot {
///     id: 0, center: Vec3::ZERO, normal: Vec3::Z, radius: 5.0, anchor_atom: 0,
/// }];
/// let mut eval = SyntheticEvaluator::new(vec![Vec3::new(1.0, 1.0, 0.0)]);
/// let result = run(&m1(0.2), &spots, &mut eval, 42);
/// assert_eq!(result.evaluations, m1(0.2).evals_per_spot());
/// assert!(result.best.score < result.best_history[0]);
/// ```
pub fn run<E: BatchEvaluator>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
) -> RunResult {
    run_seeded(params, spots, evaluator, seed, &[])
}

/// Like [`run`], but injects already-scored `seed_confs` into the initial
/// populations (each replaces the worst member of its spot's population).
/// This is the warm-start hook the cooperative job scheduler in `vsched`
/// uses to share incumbent solutions between independent executions.
pub fn run_seeded<E: BatchEvaluator>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    seed_confs: &[Conformation],
) -> RunResult {
    run_seeded_traced(params, spots, evaluator, seed, seed_confs, &Trace::disabled())
}

/// Like [`run`], but with a [`vstrace::Trace`] attached: the engine opens
/// `initialize` / `generation` / `improve` spans around its phases and
/// emits a `GenerationDone` event (generation index, incumbent best,
/// cumulative evaluations) after every generation. A disabled trace makes
/// this identical to [`run`].
pub fn run_traced<E: BatchEvaluator>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    trace: &Trace,
) -> RunResult {
    run_seeded_traced(params, spots, evaluator, seed, &[], trace)
}

/// The fully general entry point: warm-start seeds *and* trace
/// instrumentation. [`run`], [`run_seeded`] and [`run_traced`] all delegate
/// here.
pub fn run_seeded_traced<E: BatchEvaluator>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    seed_confs: &[Conformation],
    trace: &Trace,
) -> RunResult {
    // PANICS: invalid parameters are a caller programming error; fail fast.
    params.validate().expect("invalid metaheuristic parameters");
    assert!(!spots.is_empty(), "need at least one spot");

    let mut state = Engine {
        params,
        spots,
        rngs: spots.iter().map(|s| RngStream::derive(seed, s.id as u64 + 1)).collect(),
        populations: Vec::new(),
        evaluations: 0,
        batch_trace: Vec::new(),
        trace: trace.clone(),
    };

    {
        let _span = trace.span("initialize");
        state.initialize(evaluator);
    }
    state.inject_seeds(spots, seed_confs);
    let mut best_history = vec![state.global_best().score];
    let mut diversity_history = vec![state.mean_diversity()];

    let mut generations_run = 0;
    if params.single_pass {
        // M4: one Improve pass over the large initial set; no Select /
        // Combine / Include loop.
        let _span = trace.span("improve");
        state.improve_populations(evaluator);
        diversity_history.push(state.mean_diversity());
    } else {
        let max_gens = params.end.max_generations();
        let mut stale = 0usize;
        let mut best_so_far = state.global_best().score;
        for generation in 0..max_gens {
            {
                let _span = trace.span("generation");
                state.generation(evaluator);
            }
            generations_run += 1;
            let now_best = state.global_best().score;
            trace.emit(Event::GenerationDone {
                generation: generation as u32,
                best_score: now_best,
                evaluations: state.evaluations,
            });
            best_history.push(now_best);
            diversity_history.push(state.mean_diversity());
            if let EndCondition::Convergence { patience, .. } = params.end {
                if now_best < best_so_far - 1e-12 {
                    best_so_far = now_best;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
    }

    let best_per_spot: Vec<Conformation> = state.populations.iter().map(|pop| pop[0]).collect();
    // PANICS: non-empty by caller contract.
    let best = *best_per_spot.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty spots");

    RunResult {
        best,
        best_per_spot,
        evaluations: state.evaluations,
        generations_run,
        batch_trace: state.batch_trace,
        best_history,
        diversity_history,
    }
}

// ---------------------------------------------------------------------------
// Per-spot operators.
//
// The lockstep engine below and the pipelined engine in [`crate::pipeline`]
// must produce bit-identical per-spot trajectories, so every operation that
// draws from a spot's RNG stream lives here as a free function over one
// spot's state. Both engines call these in the same per-spot order; only
// the batching across spots differs.
// ---------------------------------------------------------------------------

/// `Initialize` for one spot: `population_per_spot` random conformations
/// (unscored, in draw order).
pub(crate) fn seed_spot(
    params: &MetaheuristicParams,
    spot: &Spot,
    rng: &mut RngStream,
) -> Vec<Conformation> {
    (0..params.population_per_spot).map(|_| Conformation::random_at(spot, rng)).collect()
}

/// Two parents from one spot's (sorted) population per the selection
/// strategy.
pub(crate) fn pick_parents(
    params: &MetaheuristicParams,
    pop: &[Conformation],
    rng: &mut RngStream,
) -> (Conformation, Conformation) {
    match params.select {
        SelectStrategy::TruncationBest { fraction } => {
            let pool = ((pop.len() as f64 * fraction).ceil() as usize).clamp(1, pop.len());
            let i = rng.index(pool);
            let j = rng.index(pool);
            (pop[i], pop[j])
        }
        SelectStrategy::Tournament { k } => {
            let pick = |rng: &mut RngStream, pop: &[Conformation]| {
                let mut best = pop[rng.index(pop.len())];
                for _ in 1..k {
                    let c = pop[rng.index(pop.len())];
                    if c.score < best.score {
                        best = c;
                    }
                }
                best
            };
            (pick(rng, pop), pick(rng, pop))
        }
    }
}

/// `Select` + `Combine` for one spot: `offspring_per_spot` children
/// (unscored, in draw order).
pub(crate) fn breed_spot(
    params: &MetaheuristicParams,
    spot: &Spot,
    pop: &[Conformation],
    rng: &mut RngStream,
) -> Vec<Conformation> {
    let mut offspring = Vec::with_capacity(params.offspring_per_spot);
    for _ in 0..params.offspring_per_spot {
        let (a, b) = pick_parents(params, pop, rng);
        let mut child = Conformation::crossover(&a, &b, rng);
        if rng.chance(params.mutation_prob) {
            child = child.perturbed(params.max_shift, params.max_angle, rng);
        }
        offspring.push(child.clamped_to(spot));
    }
    offspring
}

/// One local-search step's proposals for one spot: a perturbation of each
/// of the `k` best group members (unscored, in element order).
pub(crate) fn propose_spot(
    params: &MetaheuristicParams,
    spot: &Spot,
    group: &[Conformation],
    k: usize,
    rng: &mut RngStream,
) -> Vec<Conformation> {
    group
        .iter()
        .take(k)
        .map(|elem| elem.perturbed(params.max_shift, params.max_angle, rng).clamped_to(spot))
        .collect()
}

/// Accept scored proposals into one spot's group per the hill-climb or
/// simulated-annealing rule at local-search step `step`.
pub(crate) fn accept_spot(
    params: &MetaheuristicParams,
    step: usize,
    group: &mut [Conformation],
    cands: &[Conformation],
    rng: &mut RngStream,
) {
    let (sa_t0, sa_cooling) = match params.improve {
        ImproveStrategy::SimulatedAnnealing { t0, cooling, .. } => (t0, cooling),
        _ => (0.0, 1.0),
    };
    let temp = sa_t0 * sa_cooling.powi(step as i32);
    for (ei, cand) in cands.iter().enumerate() {
        let cur = &mut group[ei];
        let accept = if cand.score < cur.score {
            true
        } else if temp > 0.0 {
            let delta = cand.score - cur.score;
            rng.chance((-delta / temp).exp())
        } else {
            false
        };
        if accept {
            *cur = *cand;
        }
    }
}

/// One Lamarckian step's trial points for one spot: along the gradient
/// when available, stochastic perturbation otherwise.
pub(crate) fn lamarckian_trials(
    params: &MetaheuristicParams,
    spot: &Spot,
    current: &[Conformation],
    grads: Option<&[vsscore::RigidGradient]>,
    rng: &mut RngStream,
) -> Vec<Conformation> {
    use vsmath::{Quat, RigidTransform};
    let (step_size, angle_step) = match params.improve {
        ImproveStrategy::Lamarckian { step_size, angle_step, .. } => (step_size, angle_step),
        // PANICS: callers only reach this under the Lamarckian strategy.
        _ => unreachable!("lamarckian_trials outside Lamarckian improve"),
    };
    match grads {
        Some(gs) => current
            .iter()
            .zip(gs)
            .map(|(c, g)| {
                let dir = g.force.normalized().unwrap_or(vsmath::Vec3::ZERO);
                let t = c.pose.translation + dir * step_size;
                let rot = match g.torque.normalized() {
                    Some(axis) => {
                        (Quat::from_axis_angle(axis, angle_step) * c.pose.rotation).renormalize()
                    }
                    None => c.pose.rotation,
                };
                Conformation::new(RigidTransform::new(rot, t), c.spot_id).clamped_to(spot)
            })
            .collect(),
        None => current
            .iter()
            .map(|c| c.perturbed(params.max_shift, params.max_angle, rng).clamped_to(spot))
            .collect(),
    }
}

/// `Include` for one spot: merge the offspring group into the population
/// and keep the best `population_per_spot`.
pub(crate) fn include_spot(p: usize, pop: &mut Vec<Conformation>, group: Vec<Conformation>) {
    pop.extend(group);
    pop.sort_by(score_cmp);
    pop.truncate(p);
}

/// Inject already-scored warm-start seeds addressed to `spot` into its
/// population (each replaces the worst member if it improves on it).
pub(crate) fn inject_seeds_spot(
    spot: &Spot,
    pop: &mut [Conformation],
    seed_confs: &[Conformation],
) {
    for c in seed_confs {
        if !c.is_scored() || c.spot_id != spot.id {
            continue;
        }
        let last = pop.len() - 1;
        if c.score < pop[last].score {
            pop[last] = *c;
            pop.sort_by(score_cmp);
        }
    }
}

struct Engine<'a> {
    params: &'a MetaheuristicParams,
    spots: &'a [Spot],
    rngs: Vec<RngStream>,
    /// One population per spot, kept sorted by ascending score.
    populations: Vec<Vec<Conformation>>,
    evaluations: u64,
    batch_trace: Vec<u64>,
    trace: Trace,
}

impl Engine<'_> {
    fn evaluate_batch<E: BatchEvaluator>(&mut self, evaluator: &mut E, confs: &mut [Conformation]) {
        if confs.is_empty() {
            return;
        }
        evaluator.evaluate(confs);
        self.evaluations += confs.len() as u64;
        self.batch_trace.push(confs.len() as u64);
    }

    /// Like [`Engine::evaluate_batch`] but also asks for gradients (one
    /// batch of evaluations either way).
    fn evaluate_batch_gradients<E: BatchEvaluator>(
        &mut self,
        evaluator: &mut E,
        confs: &mut [Conformation],
    ) -> Option<Vec<vsscore::RigidGradient>> {
        if confs.is_empty() {
            return Some(Vec::new());
        }
        let grads = evaluator.evaluate_with_gradients(confs);
        if grads.is_none() {
            // Fallback path still needs the scores.
            evaluator.evaluate(confs);
        }
        self.evaluations += confs.len() as u64;
        self.batch_trace.push(confs.len() as u64);
        grads
    }

    /// `Initialize(S)`: random conformations at every spot, scored in one
    /// batch.
    fn initialize<E: BatchEvaluator>(&mut self, evaluator: &mut E) {
        let p = self.params.population_per_spot;
        let mut flat: Vec<Conformation> = Vec::with_capacity(p * self.spots.len());
        for (si, spot) in self.spots.iter().enumerate() {
            flat.extend(seed_spot(self.params, spot, &mut self.rngs[si]));
        }
        self.evaluate_batch(evaluator, &mut flat);
        self.populations = flat.chunks(p).map(|c| c.to_vec()).collect();
        for pop in &mut self.populations {
            pop.sort_by(score_cmp);
        }
    }

    /// Replace the worst member of each targeted spot's population with a
    /// shared (already-scored) conformation.
    fn inject_seeds(&mut self, spots: &[Spot], seed_confs: &[Conformation]) {
        for c in seed_confs {
            if !c.is_scored() {
                continue;
            }
            if let Some(si) = spots.iter().position(|s| s.id == c.spot_id) {
                let pop = &mut self.populations[si];
                let last = pop.len() - 1;
                if c.score < pop[last].score {
                    pop[last] = *c;
                    pop.sort_by(score_cmp);
                }
            }
        }
    }

    /// One full Select → Combine → Improve → Include generation.
    fn generation<E: BatchEvaluator>(&mut self, evaluator: &mut E) {
        // Select + Combine, per spot, into one flat offspring batch.
        let o = self.params.offspring_per_spot;
        let mut offspring: Vec<Conformation> = Vec::with_capacity(o * self.spots.len());
        for si in 0..self.spots.len() {
            offspring.extend(breed_spot(
                self.params,
                &self.spots[si],
                &self.populations[si],
                &mut self.rngs[si],
            ));
        }
        self.evaluate_batch(evaluator, &mut offspring);

        // Improve the best fraction of each spot's offspring.
        let mut groups: Vec<Vec<Conformation>> = offspring.chunks(o).map(|c| c.to_vec()).collect();
        for g in &mut groups {
            g.sort_by(score_cmp);
        }
        let k = improved_count(o, self.params.improve_fraction);
        if k > 0 && self.params.improve.evals_per_element() > 0 {
            let _span = self.trace.span("improve");
            self.local_search(evaluator, &mut groups, k);
        }

        // Include: merge offspring and keep the best `population_per_spot`.
        let p = self.params.population_per_spot;
        for (pop, group) in self.populations.iter_mut().zip(groups) {
            include_spot(p, pop, group);
        }
    }

    /// `Improve` over the whole populations (M4 single-pass mode).
    fn improve_populations<E: BatchEvaluator>(&mut self, evaluator: &mut E) {
        let k = improved_count(self.params.population_per_spot, self.params.improve_fraction);
        if k == 0 || self.params.improve.evals_per_element() == 0 {
            return;
        }
        let mut groups = std::mem::take(&mut self.populations);
        self.local_search(evaluator, &mut groups, k);
        for pop in &mut groups {
            pop.sort_by(score_cmp);
        }
        self.populations = groups;
    }

    /// Batched local search: improve the best `k` elements of each group in
    /// lockstep; each step scores one perturbation per improving element
    /// across all spots in a single batch.
    fn local_search<E: BatchEvaluator>(
        &mut self,
        evaluator: &mut E,
        groups: &mut [Vec<Conformation>],
        k: usize,
    ) {
        if let ImproveStrategy::Lamarckian { steps, .. } = self.params.improve {
            self.lamarckian_search(evaluator, groups, k, steps);
            return;
        }
        let steps = self.params.improve.evals_per_element();

        for step in 0..steps {
            // Propose one perturbation per improving element.
            let mut proposals: Vec<Conformation> = Vec::new();
            for (si, group) in groups.iter().enumerate() {
                proposals.extend(propose_spot(
                    self.params,
                    &self.spots[si],
                    group,
                    k,
                    &mut self.rngs[si],
                ));
            }
            self.evaluate_batch(evaluator, &mut proposals);

            // Accept per hill-climb or SA rule, spot by spot in slot order.
            let mut off = 0;
            for (si, group) in groups.iter_mut().enumerate() {
                let n = group.len().min(k);
                accept_spot(self.params, step, group, &proposals[off..off + n], &mut self.rngs[si]);
                off += n;
            }
        }
    }

    /// Lamarckian descent: each step evaluates gradients at the current
    /// points, takes one force/torque-directed trial move per element, and
    /// keeps improvements (acquired traits are written back into the
    /// genotype — the defining Lamarckian property).
    fn lamarckian_search<E: BatchEvaluator>(
        &mut self,
        evaluator: &mut E,
        groups: &mut [Vec<Conformation>],
        k: usize,
        steps: usize,
    ) {
        for _ in 0..steps {
            // Gather the improving elements across all spots.
            let mut current: Vec<Conformation> = Vec::new();
            let mut counts: Vec<usize> = Vec::with_capacity(groups.len());
            for group in groups.iter() {
                let n = group.len().min(k);
                current.extend_from_slice(&group[..n]);
                counts.push(n);
            }
            let grads = self.evaluate_batch_gradients(evaluator, &mut current);

            // Trial points: along the gradient when available, stochastic
            // perturbation otherwise.
            let mut proposals: Vec<Conformation> = Vec::with_capacity(current.len());
            let mut off = 0;
            for (si, &n) in counts.iter().enumerate() {
                proposals.extend(lamarckian_trials(
                    self.params,
                    &self.spots[si],
                    &current[off..off + n],
                    grads.as_ref().map(|gs| &gs[off..off + n]),
                    &mut self.rngs[si],
                ));
                off += n;
            }
            self.evaluate_batch(evaluator, &mut proposals);
            let mut off = 0;
            for (si, &n) in counts.iter().enumerate() {
                for ei in 0..n {
                    // The gathered copy carries the freshly evaluated score
                    // of the original; keep whichever is better.
                    let (cand, cur) = (proposals[off + ei], current[off + ei]);
                    groups[si][ei] = if cand.score < cur.score { cand } else { cur };
                }
                off += n;
            }
        }
    }

    /// Mean translation diversity across the per-spot populations.
    fn mean_diversity(&self) -> f64 {
        if self.populations.is_empty() {
            return 0.0;
        }
        self.populations.iter().map(|p| crate::diversity::translation_diversity(p)).sum::<f64>()
            / self.populations.len() as f64
    }

    fn global_best(&self) -> Conformation {
        *self
            .populations
            .iter()
            .map(|p| &p[0])
            .min_by(|a, b| score_cmp(a, b))
            // PANICS: non-empty by caller contract.
            .expect("non-empty populations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;
    use crate::params::{EndCondition, ImproveStrategy, MetaheuristicParams, SelectStrategy};
    use vsmath::Vec3;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(10.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn ga(gens: usize) -> MetaheuristicParams {
        MetaheuristicParams {
            name: "test-ga".into(),
            population_per_spot: 32,
            select: SelectStrategy::TruncationBest { fraction: 0.5 },
            offspring_per_spot: 32,
            improve_fraction: 0.0,
            improve: ImproveStrategy::None,
            mutation_prob: 0.3,
            max_shift: 1.0,
            max_angle: 0.4,
            end: EndCondition::Generations(gens),
            single_pass: false,
        }
    }

    /// Optima placed inside each spot's search ball.
    fn evaluator_for(spots: &[Spot]) -> SyntheticEvaluator {
        SyntheticEvaluator::new(spots.iter().map(|s| s.center + Vec3::new(1.0, 1.0, 0.5)).collect())
    }

    #[test]
    fn ga_improves_over_generations() {
        let sp = spots(4);
        let mut ev = evaluator_for(&sp);
        let r = run(&ga(30), &sp, &mut ev, 7);
        assert!(
            r.best_history.last().unwrap() < &(r.best_history[0] * 0.5),
            "history {:?}",
            r.best_history
        );
        assert_eq!(r.generations_run, 30);
    }

    #[test]
    fn evaluation_count_matches_params() {
        let sp = spots(3);
        let mut ev = evaluator_for(&sp);
        let p = ga(10);
        let r = run(&p, &sp, &mut ev, 1);
        assert_eq!(r.evaluations, p.evals_per_spot() * 3);
        assert_eq!(ev.evaluations, r.evaluations);
        assert_eq!(r.batch_trace.iter().sum::<u64>(), r.evaluations);
    }

    #[test]
    fn evaluation_count_with_improvement() {
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams {
            improve_fraction: 0.25,
            improve: ImproveStrategy::HillClimb { steps: 3 },
            ..ga(5)
        };
        let r = run(&p, &sp, &mut ev, 1);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
    }

    #[test]
    fn single_pass_counts_and_runs_no_generations() {
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams {
            population_per_spot: 128,
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 20 },
            single_pass: true,
            ..ga(0)
        };
        let r = run(&p, &sp, &mut ev, 3);
        assert_eq!(r.generations_run, 0);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
        // Pure local search still optimizes.
        assert!(r.best.score < 5.0, "best {}", r.best.score);
    }

    #[test]
    fn deterministic_across_runs() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::HillClimb { steps: 2 },
            ..ga(8)
        };
        let mut e1 = evaluator_for(&sp);
        let mut e2 = evaluator_for(&sp);
        let r1 = run(&p, &sp, &mut e1, 42);
        let r2 = run(&p, &sp, &mut e2, 42);
        assert_eq!(r1.best.score, r2.best.score);
        assert_eq!(r1.best.pose, r2.best.pose);
        assert_eq!(r1.batch_trace, r2.batch_trace);
    }

    #[test]
    fn different_seeds_differ() {
        let sp = spots(2);
        let mut e1 = evaluator_for(&sp);
        let mut e2 = evaluator_for(&sp);
        let r1 = run(&ga(5), &sp, &mut e1, 1);
        let r2 = run(&ga(5), &sp, &mut e2, 2);
        assert_ne!(r1.best.score, r2.best.score);
    }

    #[test]
    fn hill_climb_beats_no_improvement() {
        let sp = spots(4);
        let mut e1 = evaluator_for(&sp);
        let mut e2 = evaluator_for(&sp);
        let plain = ga(10);
        let improved = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 4 },
            ..ga(10)
        };
        let r_plain = run(&plain, &sp, &mut e1, 5);
        let r_imp = run(&improved, &sp, &mut e2, 5);
        assert!(
            r_imp.best.score <= r_plain.best.score,
            "LS {} vs plain {}",
            r_imp.best.score,
            r_plain.best.score
        );
    }

    #[test]
    fn best_per_spot_belongs_to_spot() {
        let sp = spots(5);
        let mut ev = evaluator_for(&sp);
        let r = run(&ga(5), &sp, &mut ev, 9);
        assert_eq!(r.best_per_spot.len(), 5);
        for (i, c) in r.best_per_spot.iter().enumerate() {
            assert_eq!(c.spot_id, i);
            // Stays within the spot's search ball.
            assert!(c.pose.translation.dist(sp[i].center) <= sp[i].radius + 1e-9);
        }
    }

    #[test]
    fn best_is_min_of_best_per_spot() {
        let sp = spots(3);
        let mut ev = evaluator_for(&sp);
        let r = run(&ga(6), &sp, &mut ev, 11);
        let min = r.best_per_spot.iter().map(|c| c.score).fold(f64::INFINITY, f64::min);
        assert_eq!(r.best.score, min);
    }

    #[test]
    fn convergence_end_stops_early() {
        let sp = spots(1);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams {
            end: EndCondition::Convergence { patience: 3, max: 500 },
            mutation_prob: 0.0, // converges fast without mutation noise
            ..ga(0)
        };
        let r = run(&p, &sp, &mut ev, 13);
        assert!(r.generations_run < 500, "never converged");
    }

    #[test]
    fn tournament_selection_works() {
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams { select: SelectStrategy::Tournament { k: 3 }, ..ga(10) };
        let r = run(&p, &sp, &mut ev, 17);
        assert!(r.best_history.last().unwrap() <= &r.best_history[0]);
    }

    #[test]
    fn lamarckian_descends_synthetic_gradient() {
        // On the smooth synthetic landscape, gradient descent must converge
        // much tighter than blind hill climbing at the same budget.
        let sp = spots(2);
        let lam = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::Lamarckian { steps: 15, step_size: 0.25, angle_step: 0.05 },
            mutation_prob: 0.0,
            ..ga(4)
        };
        let hc = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 30 }, // same eval budget
            mutation_prob: 0.0,
            ..ga(4)
        };
        assert_eq!(lam.evals_per_spot(), hc.evals_per_spot(), "budgets must match");
        let mut e1 = evaluator_for(&sp);
        let mut e2 = evaluator_for(&sp);
        let r_lam = run(&lam, &sp, &mut e1, 51);
        let r_hc = run(&hc, &sp, &mut e2, 51);
        assert!(
            r_lam.best.score < r_hc.best.score,
            "Lamarckian {} should beat hill climb {}",
            r_lam.best.score,
            r_hc.best.score
        );
    }

    #[test]
    fn lamarckian_eval_accounting() {
        let sp = spots(2);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::Lamarckian { steps: 3, step_size: 0.2, angle_step: 0.05 },
            ..ga(4)
        };
        let mut ev = evaluator_for(&sp);
        let r = run(&p, &sp, &mut ev, 53);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
        assert_eq!(ev.evaluations, r.evaluations);
    }

    #[test]
    fn lamarckian_never_accepts_worse() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::Lamarckian { steps: 8, step_size: 0.5, angle_step: 0.1 },
            ..ga(6)
        };
        let mut ev = evaluator_for(&sp);
        let r = run(&p, &sp, &mut ev, 57);
        for w in r.best_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    /// An evaluator that scores like the synthetic landscape but reports no
    /// gradient support, exercising the fallback path.
    struct NoGradient(SyntheticEvaluator);
    impl crate::evaluator::BatchEvaluator for NoGradient {
        fn evaluate(&mut self, confs: &mut [Conformation]) {
            self.0.evaluate(confs)
        }
        fn pairs_per_eval(&self) -> u64 {
            1
        }
        // evaluate_with_gradients: default None.
    }

    #[test]
    fn lamarckian_falls_back_without_gradients() {
        let sp = spots(2);
        let p = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::Lamarckian { steps: 5, step_size: 0.3, angle_step: 0.1 },
            ..ga(3)
        };
        let mut ev = NoGradient(evaluator_for(&sp));
        let r = run(&p, &sp, &mut ev, 59);
        assert!(r.best.is_scored());
        assert_eq!(r.evaluations, p.evals_per_spot() * 2, "fallback keeps the same budget");
        // Still optimizes (stochastically).
        assert!(r.best_history.last().unwrap() <= &r.best_history[0]);
    }

    #[test]
    fn simulated_annealing_improver_runs() {
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::SimulatedAnnealing { steps: 5, t0: 1.0, cooling: 0.8 },
            ..ga(5)
        };
        let r = run(&p, &sp, &mut ev, 19);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
    }

    #[test]
    fn diversity_history_shows_contraction() {
        // Elitist selection on a single-basin landscape must contract the
        // populations over generations.
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let p = MetaheuristicParams { mutation_prob: 0.05, ..ga(25) };
        let r = run(&p, &sp, &mut ev, 61);
        assert_eq!(r.diversity_history.len(), 1 + r.generations_run);
        let first = r.diversity_history[0];
        let last = *r.diversity_history.last().unwrap();
        assert!(last < first * 0.6, "no contraction: {first} -> {last}");
        assert!(r.diversity_history.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn population_never_regresses() {
        // Elitist include: generation bests are non-increasing.
        let sp = spots(3);
        let mut ev = evaluator_for(&sp);
        let r = run(&ga(20), &sp, &mut ev, 23);
        for w in r.best_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best regressed: {:?}", w);
        }
    }

    #[test]
    #[should_panic]
    fn empty_spots_panics() {
        let mut ev = SyntheticEvaluator::new(vec![Vec3::ZERO]);
        run(&ga(1), &[], &mut ev, 1);
    }

    #[test]
    fn seeded_run_injects_good_solution() {
        let sp = spots(2);
        // A perfect solution for spot 0, pre-scored.
        let mut seed_conf = Conformation::new(
            vsmath::RigidTransform::from_translation(sp[0].center + Vec3::new(1.0, 1.0, 0.5)),
            0,
        );
        seed_conf.score = 0.0;
        let p = ga(0); // no generations: initial population only
        let mut e1 = evaluator_for(&sp);
        let r_plain = run(&p, &sp, &mut e1, 31);
        let mut e2 = evaluator_for(&sp);
        let r_seeded = crate::engine::run_seeded(&p, &sp, &mut e2, 31, &[seed_conf]);
        assert_eq!(r_seeded.best.score, 0.0);
        assert!(r_plain.best.score > 0.0);
    }

    #[test]
    fn unscored_seeds_are_ignored() {
        let sp = spots(1);
        let unscored = Conformation::new(vsmath::RigidTransform::IDENTITY, 0);
        let mut ev = evaluator_for(&sp);
        // Must not panic or inject NaN into the population.
        let r = crate::engine::run_seeded(&ga(2), &sp, &mut ev, 37, &[unscored]);
        assert!(r.best.is_scored());
    }

    #[test]
    fn seeds_for_unknown_spots_are_ignored() {
        let sp = spots(1);
        let mut foreign = Conformation::new(vsmath::RigidTransform::IDENTITY, 99);
        foreign.score = -1e9;
        let mut ev = evaluator_for(&sp);
        let r = crate::engine::run_seeded(&ga(1), &sp, &mut ev, 41, &[foreign]);
        assert!(r.best.score > -1e9);
    }

    #[test]
    fn batch_trace_structure_for_plain_ga() {
        // init batch + one offspring batch per generation.
        let sp = spots(2);
        let mut ev = evaluator_for(&sp);
        let r = run(&ga(4), &sp, &mut ev, 29);
        assert_eq!(r.batch_trace.len(), 1 + 4);
        assert_eq!(r.batch_trace[0], 32 * 2);
        for &b in &r.batch_trace[1..] {
            assert_eq!(b, 32 * 2);
        }
    }
}
