//! Synchronization facade for the pipelined engine's stage channels.
//!
//! Normal builds re-export `std` types verbatim — a zero-cost pure alias,
//! so the production pipeline is bit-for-bit the `std`-based
//! implementation. Under the `vscheck-model` feature the same names
//! resolve to the `vscheck` instrumented primitives, turning every sync
//! operation in [`crate::pipeline`] into a scheduler choice point so the
//! `model_*` tests can exhaustively explore interleavings (DESIGN.md §9).

#[cfg(not(feature = "vscheck-model"))]
pub(crate) use std::sync::{Condvar, Mutex};
#[cfg(feature = "vscheck-model")]
pub(crate) use vscheck::sync::{Condvar, Mutex};
