//! Property-based tests for the metaheuristic engines.

use metaheur::{
    run, run_pso, run_tabu, EndCondition, ImproveStrategy, MetaheuristicParams, PsoParams,
    SelectStrategy, SyntheticEvaluator, TabuParams,
};
use proptest::prelude::*;
use vsmath::Vec3;
use vsmol::Spot;

fn spots(n: usize) -> Vec<Spot> {
    (0..n)
        .map(|i| Spot {
            id: i,
            center: Vec3::new(14.0 * i as f64, 0.0, 0.0),
            normal: Vec3::Z,
            radius: 5.0,
            anchor_atom: 0,
        })
        .collect()
}

fn evaluator(sp: &[Spot]) -> SyntheticEvaluator {
    SyntheticEvaluator::new(sp.iter().map(|s| s.center).collect())
}

fn arb_improve() -> impl Strategy<Value = ImproveStrategy> {
    prop_oneof![
        Just(ImproveStrategy::None),
        (1usize..5).prop_map(|steps| ImproveStrategy::HillClimb { steps }),
        (1usize..4, 0.1..3.0f64, 0.5..0.99f64).prop_map(|(steps, t0, cooling)| {
            ImproveStrategy::SimulatedAnnealing { steps, t0, cooling }
        }),
        (1usize..3, 0.05..1.0f64, 0.01..0.3f64).prop_map(|(steps, s, a)| {
            ImproveStrategy::Lamarckian { steps, step_size: s, angle_step: a }
        }),
    ]
}

fn arb_params() -> impl Strategy<Value = MetaheuristicParams> {
    (
        2usize..24,  // population
        1usize..16,  // offspring
        0.0..1.0f64, // improve fraction
        arb_improve(),
        0.0..1.0f64, // mutation prob
        1usize..6,   // generations
        prop_oneof![
            (0.01..1.0f64).prop_map(|f| SelectStrategy::TruncationBest { fraction: f }),
            (1usize..5).prop_map(|k| SelectStrategy::Tournament { k }),
        ],
    )
        .prop_map(|(pop, off, frac, improve, mut_p, gens, select)| MetaheuristicParams {
            name: "prop".into(),
            population_per_spot: pop,
            select,
            offspring_per_spot: off,
            improve_fraction: frac,
            improve,
            mutation_prob: mut_p,
            max_shift: 1.0,
            max_angle: 0.4,
            end: EndCondition::Generations(gens),
            single_pass: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_count_always_matches_prediction(
        params in arb_params(),
        n_spots in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sp = spots(n_spots);
        let mut ev = evaluator(&sp);
        let r = run(&params, &sp, &mut ev, seed);
        prop_assert_eq!(r.evaluations, params.evals_per_spot() * n_spots as u64);
        prop_assert_eq!(ev.evaluations, r.evaluations);
        prop_assert_eq!(r.batch_trace.iter().sum::<u64>(), r.evaluations);
    }

    #[test]
    fn best_history_never_regresses(
        params in arb_params(),
        seed in any::<u64>(),
    ) {
        let sp = spots(2);
        let mut ev = evaluator(&sp);
        let r = run(&params, &sp, &mut ev, seed);
        for w in r.best_history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "regression: {:?}", r.best_history);
        }
    }

    #[test]
    fn best_per_spot_within_bounds(
        params in arb_params(),
        n_spots in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sp = spots(n_spots);
        let mut ev = evaluator(&sp);
        let r = run(&params, &sp, &mut ev, seed);
        prop_assert_eq!(r.best_per_spot.len(), n_spots);
        for (i, c) in r.best_per_spot.iter().enumerate() {
            prop_assert_eq!(c.spot_id, i);
            prop_assert!(c.pose.translation.dist(sp[i].center) <= sp[i].radius + 1e-9);
            prop_assert!(c.is_scored());
        }
    }

    #[test]
    fn engine_is_seed_deterministic(params in arb_params(), seed in any::<u64>()) {
        let sp = spots(2);
        let mut e1 = evaluator(&sp);
        let mut e2 = evaluator(&sp);
        let a = run(&params, &sp, &mut e1, seed);
        let b = run(&params, &sp, &mut e2, seed);
        prop_assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        prop_assert_eq!(a.batch_trace, b.batch_trace);
    }

    #[test]
    fn pso_eval_accounting_any_config(
        swarm in 2usize..32,
        iterations in 1usize..20,
        seed in any::<u64>(),
    ) {
        let sp = spots(2);
        let params = PsoParams { swarm_per_spot: swarm, iterations, ..Default::default() };
        let mut ev = evaluator(&sp);
        let r = run_pso(&params, &sp, &mut ev, seed);
        prop_assert_eq!(r.evaluations, params.evals_per_spot() * 2);
        for w in r.best_history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn tabu_eval_accounting_any_config(
        iterations in 1usize..20,
        neighbors in 1usize..12,
        tenure in 1usize..20,
        seed in any::<u64>(),
    ) {
        let sp = spots(2);
        let params = TabuParams { iterations, neighbors, tenure, ..Default::default() };
        let mut ev = evaluator(&sp);
        let r = run_tabu(&params, &sp, &mut ev, seed);
        prop_assert_eq!(r.evaluations, params.evals_per_spot() * 2);
        for w in r.best_history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
