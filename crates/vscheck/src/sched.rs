//! The deterministic scheduler behind [`explore`].
//!
//! Model threads are real OS threads, but at most one ever executes user
//! code: every instrumented operation calls [`Sched::switch`], which
//! records the caller's new status, picks the next thread according to
//! the schedule being explored, and parks the caller until it is chosen
//! again. Schedules are enumerated by depth-first search over the choice
//! points, bounded by a maximum number of *preemptions* (involuntary
//! switches away from a still-runnable thread) per schedule.
//!
//! A schedule is the sequence of task ids chosen at each choice point; it
//! serializes to a comma-separated string that [`replay`] can feed back to
//! reproduce a failure deterministically.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind model threads when a schedule is aborted
/// (failure found, or replay diverged). Never escapes the crate: thread
/// wrappers and [`explore`] catch it.
pub(crate) struct AbortToken;

/// What kind of defect a failing schedule exhibited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live thread is blocked (includes lost wakeups: a waiter that
    /// missed its notify and will never be woken).
    Deadlock,
    /// User code panicked (assertion failure, explicit panic, ...).
    Panic,
    /// One schedule exceeded the step budget — a livelock or an unbounded
    /// spin that never reaches a blocking operation.
    StepLimit,
    /// A replayed schedule did not match the execution (wrong schedule
    /// string, or the closure is not deterministic).
    ReplayDivergence,
    /// The same choice prefix produced a different runnable set across
    /// runs: the closure is nondeterministic and cannot be explored.
    Nondeterminism,
}

/// A failing interleaving: what went wrong, and the schedule that
/// reproduces it via [`replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// Defect category.
    pub kind: FailureKind,
    /// Human-readable description (panic message, blocked-thread list...).
    pub message: String,
    /// Replayable schedule trace: comma-separated task ids, one per choice
    /// point, in order. Feed to [`replay`] to reproduce deterministically.
    pub schedule: String,
}

/// Outcome of an [`explore`] or [`replay`] call.
#[derive(Clone, Debug)]
#[must_use = "a Report may carry a Failure; call assert_passed() or inspect .failure"]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// `true` when the state space was exhausted within the preemption
    /// bound; `false` when the schedule budget ran out first (or a failure
    /// short-circuited the search).
    pub complete: bool,
    /// The first failing interleaving found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the failure message and its replayable schedule if any
    /// interleaving failed.
    #[track_caller]
    pub fn assert_passed(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model checking failed after {} schedule(s): {:?}: {}\n  replay schedule: \"{}\"",
                self.schedules, f.kind, f.message, f.schedule
            );
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per schedule (CHESS-style
    /// preemption bounding). Most real concurrency bugs need <= 2.
    pub preemption_bound: usize,
    /// Stop after this many schedules even if the space is not exhausted.
    pub max_schedules: u64,
    /// Per-schedule step budget; exceeding it reports [`FailureKind::StepLimit`].
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config { preemption_bound: 2, max_schedules: 20_000, max_steps: 20_000 }
    }
}

impl Config {
    /// A configuration with the given preemption bound and defaults otherwise.
    pub fn with_bound(preemption_bound: usize) -> Config {
        Config { preemption_bound, ..Config::default() }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

struct Task {
    status: Status,
    name: Option<String>,
    /// Stashed payload of a user panic that escaped the task's closure;
    /// consumed by `join`, or reported as a failure if never joined.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// One DFS choice point: the candidate tasks that were runnable, which one
/// is currently chosen, and the preemption budget state when it was made.
struct Frame {
    /// Candidate task ids. When `voluntary` is `Some(t)`, `candidates[0] == t`
    /// (continuing the running task) and every alternative is a preemption.
    candidates: Vec<usize>,
    /// Index into `candidates` chosen on the current schedule.
    next: usize,
    /// `Some(task)` when the switching task was still runnable here.
    voluntary: Option<usize>,
    /// Preemptions spent before this choice (bound check on backtrack).
    preemptions_before: usize,
}

struct SState {
    tasks: Vec<Task>,
    running: Option<usize>,
    done: bool,
    aborting: bool,
    failure: Option<Failure>,
    /// Failure message is a placeholder to be upgraded with the real panic
    /// payload once the unwind reaches the explore catch site.
    failure_is_placeholder: bool,
    trail: Vec<Frame>,
    cursor: usize,
    preemptions: usize,
    steps: u64,
    /// Chosen task id per choice point — the schedule trace.
    choices: Vec<usize>,
    /// Condvar id -> FIFO wait queue of task ids.
    cv_waiters: HashMap<usize, Vec<usize>>,
    /// Replay mode: forced task id per choice point.
    forced: Option<Vec<usize>>,
    cfg: Config,
}

pub(crate) struct Sched {
    state: StdMutex<SState>,
    cv: StdCondvar,
}

/// Per-thread scheduler context: which exploration this OS thread belongs
/// to, and its task id. `None` means "not managed" — instrumented types
/// pass straight through to `std`.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Sched>,
    pub(crate) task: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

static NEXT_OBJ_ID: AtomicUsize = AtomicUsize::new(1);

/// Process-unique id for a model mutex/condvar (blocking bookkeeping key).
pub(crate) fn new_obj_id() -> usize {
    NEXT_OBJ_ID.fetch_add(1, StdOrdering::Relaxed)
}

fn schedule_string(choices: &[usize]) -> String {
    choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Sched {
    fn new(cfg: Config, trail: Vec<Frame>, forced: Option<Vec<usize>>) -> Sched {
        Sched {
            state: StdMutex::new(SState {
                tasks: vec![Task { status: Status::Runnable, name: None, panic: None }],
                running: Some(0),
                done: false,
                aborting: false,
                failure: None,
                failure_is_placeholder: false,
                trail,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                choices: Vec::new(),
                cv_waiters: HashMap::new(),
                forced,
                cfg,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, SState> {
        // The scheduler mutex is never held across a panic point, but fall
        // back to the inner state anyway: a poisoned scheduler must not
        // cascade into every parked thread.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure (first one wins), abort the schedule, and wake
    /// every parked thread so it can unwind.
    fn fail(&self, st: &mut SState, kind: FailureKind, message: String, placeholder: bool) {
        if st.failure.is_none() {
            st.failure = Some(Failure { kind, message, schedule: schedule_string(&st.choices) });
            st.failure_is_placeholder = placeholder;
        }
        st.aborting = true;
        st.running = None;
        self.cv.notify_all();
    }

    /// Mark the whole schedule as aborted from a panic unwinding through
    /// model code (e.g. a Drop impl that joins). Idempotent.
    pub(crate) fn begin_abort(&self, why: &str) {
        let mut st = self.lock();
        if !st.aborting {
            self.fail(&mut st, FailureKind::Panic, why.to_string(), true);
        }
    }

    /// Pick the next task to run. `from` is the task making the switch (its
    /// status is already updated). Must be called with the state locked.
    fn pick_next(&self, st: &mut SState, from: Option<usize>) {
        if st.aborting || st.done {
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<usize> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.tasks.iter().all(|t| t.status == Status::Finished) {
                st.running = None;
                st.done = true;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = st
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| {
                    let name = t.name.as_deref().unwrap_or("<unnamed>");
                    format!("task {i} ({name}) {:?}", t.status)
                })
                .collect();
            self.fail(
                st,
                FailureKind::Deadlock,
                format!("deadlock: every live thread is blocked: {}", blocked.join("; ")),
                false,
            );
            return;
        }

        let voluntary = from.filter(|&f| st.tasks[f].status == Status::Runnable);
        let mut candidates = Vec::with_capacity(enabled.len());
        if let Some(f) = voluntary {
            candidates.push(f);
        }
        candidates.extend(enabled.iter().copied().filter(|&t| Some(t) != voluntary));

        let idx = st.cursor;
        st.cursor += 1;
        let pos = if let Some(forced) = &st.forced {
            match forced.get(idx).and_then(|want| candidates.iter().position(|t| t == want)) {
                Some(p) => p,
                None => {
                    let msg = format!(
                        "replay diverged at choice {idx}: schedule wants {:?}, runnable {candidates:?}",
                        forced.get(idx)
                    );
                    self.fail(st, FailureKind::ReplayDivergence, msg, false);
                    return;
                }
            }
        } else if idx < st.trail.len() {
            if st.trail[idx].candidates != candidates {
                let msg = format!(
                    "choice {idx}: runnable set changed across runs ({:?} vs {candidates:?}) — \
                     the closure under test must be deterministic",
                    st.trail[idx].candidates
                );
                self.fail(st, FailureKind::Nondeterminism, msg, false);
                return;
            }
            st.trail[idx].next
        } else {
            st.trail.push(Frame {
                candidates: candidates.clone(),
                next: 0,
                voluntary,
                preemptions_before: st.preemptions,
            });
            0
        };
        let chosen = candidates[pos];
        if voluntary.is_some() && Some(chosen) != voluntary {
            st.preemptions += 1;
        }
        st.choices.push(chosen);
        st.running = Some(chosen);
        self.cv.notify_all();
    }

    /// One scheduling step: `me` transitions to `status`, the scheduler
    /// picks who runs next, and the call returns once `me` is scheduled
    /// again. Panics with [`AbortToken`] when the schedule is aborted.
    ///
    /// Called during a panic unwind (a Drop impl doing synchronization),
    /// this aborts the schedule and returns immediately instead of parking
    /// — parking an unwinding thread could deadlock the teardown.
    pub(crate) fn switch(&self, me: usize, status: Status) {
        if std::thread::panicking() {
            self.begin_abort("panic unwound into a blocking model operation");
            return;
        }
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.tasks[me].status = status;
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let msg = format!("schedule exceeded {} steps (livelock?)", st.cfg.max_steps);
            self.fail(&mut st, FailureKind::StepLimit, msg, false);
            drop(st);
            panic::panic_any(AbortToken);
        }
        self.pick_next(&mut st, Some(me));
        while st.running != Some(me) {
            if st.aborting {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the scheduler first hands control to freshly spawned
    /// task `me`. Returns `false` when the schedule was aborted before
    /// that happened (the task must then exit without running its closure).
    pub(crate) fn wait_until_scheduled(&self, me: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborting {
                return false;
            }
            if st.running == Some(me) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Register a new runnable task (model `thread::spawn`).
    pub(crate) fn register_task(&self, name: Option<String>) -> usize {
        let mut st = self.lock();
        st.tasks.push(Task { status: Status::Runnable, name, panic: None });
        st.tasks.len() - 1
    }

    /// Task `me` ran to completion (`payload` carries an escaped panic).
    /// Wakes joiners and schedules the next task.
    pub(crate) fn task_finished(&self, me: usize, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock();
        st.tasks[me].status = Status::Finished;
        st.tasks[me].panic = payload;
        for t in 0..st.tasks.len() {
            if st.tasks[t].status == Status::BlockedJoin(me) {
                st.tasks[t].status = Status::Runnable;
            }
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, Some(me));
    }

    /// Mark `me` finished without scheduling (abort teardown path).
    pub(crate) fn finish_quiet(&self, me: usize) {
        let mut st = self.lock();
        st.tasks[me].status = Status::Finished;
        for t in 0..st.tasks.len() {
            if st.tasks[t].status == Status::BlockedJoin(me) {
                st.tasks[t].status = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Model `join`: block until `target` finishes. Also a choice point.
    pub(crate) fn join_model(&self, me: usize, target: usize) {
        if std::thread::panicking() {
            self.begin_abort("panic unwound into a model join");
            return;
        }
        let target_finished = { self.lock().tasks[target].status == Status::Finished };
        if target_finished {
            // Still a scheduling point, for coverage of post-join interleavings.
            self.switch(me, Status::Runnable);
        } else {
            self.switch(me, Status::BlockedJoin(target));
        }
    }

    /// Take the stashed panic payload of a finished task (model `join`).
    pub(crate) fn take_panic(&self, target: usize) -> Option<Box<dyn Any + Send>> {
        self.lock().tasks[target].panic.take()
    }

    /// Park `me` until the mutex it failed to acquire is released.
    pub(crate) fn block_on_mutex(&self, me: usize, mutex: usize) {
        if std::thread::panicking() {
            self.begin_abort("panic unwound into a model mutex acquisition");
            // The owner is unwinding concurrently during an abort; spin
            // politely until its guard drop releases the inner lock.
            std::thread::yield_now();
            return;
        }
        self.switch(me, Status::BlockedMutex(mutex));
    }

    /// A mutex was released: its blocked waiters become runnable (they
    /// re-contend when scheduled — barging semantics, like std).
    pub(crate) fn mutex_released(&self, mutex: usize) {
        let mut st = self.lock();
        for t in 0..st.tasks.len() {
            if st.tasks[t].status == Status::BlockedMutex(mutex) {
                st.tasks[t].status = Status::Runnable;
            }
        }
    }

    /// Atomically (w.r.t. the model) enqueue `me` on condvar `cv_id`,
    /// release `mutex_id`'s waiters, and park until notified. The caller
    /// must have already dropped the real inner guard.
    pub(crate) fn condvar_wait(&self, me: usize, cv_id: usize, mutex_id: usize) {
        if std::thread::panicking() {
            self.begin_abort("panic unwound into a model condvar wait");
            return;
        }
        {
            let mut st = self.lock();
            st.cv_waiters.entry(cv_id).or_default().push(me);
            for t in 0..st.tasks.len() {
                if st.tasks[t].status == Status::BlockedMutex(mutex_id) {
                    st.tasks[t].status = Status::Runnable;
                }
            }
        }
        self.switch(me, Status::BlockedCondvar(cv_id));
    }

    /// Wake one (FIFO) or all waiters of a condvar. Waiters that were
    /// never enqueued are unaffected — notifies with no waiter are lost,
    /// exactly like the real primitive.
    pub(crate) fn notify(&self, cv_id: usize, all: bool) {
        let mut st = self.lock();
        if let Some(q) = st.cv_waiters.get_mut(&cv_id) {
            let n = if all { q.len() } else { usize::from(!q.is_empty()) };
            let woken: Vec<usize> = q.drain(..n).collect();
            for t in woken {
                st.tasks[t].status = Status::Runnable;
            }
        }
    }

    /// Wait until every task has finished (explore teardown).
    fn wait_all_done(&self) {
        let mut st = self.lock();
        while !st.tasks.iter().all(|t| t.status == Status::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Advance the DFS trail to the next unexplored schedule. Returns `false`
/// when the (preemption-bounded) space is exhausted.
fn advance_trail(trail: &mut Vec<Frame>, bound: usize) -> bool {
    while let Some(f) = trail.last_mut() {
        // Alternatives at a voluntary choice are preemptions; they are only
        // explorable while the budget before this choice has headroom.
        let allowed = f.voluntary.is_none() || f.preemptions_before < bound;
        if allowed && f.next + 1 < f.candidates.len() {
            f.next += 1;
            return true;
        }
        trail.pop();
    }
    false
}

/// Run the closure once under one schedule. Returns the (possibly grown)
/// trail and the failure, if any.
fn run_one(
    f: &dyn Fn(),
    cfg: Config,
    trail: Vec<Frame>,
    forced: Option<Vec<usize>>,
) -> (Vec<Frame>, Option<Failure>) {
    let sched = Arc::new(Sched::new(cfg, trail, forced));
    set_ctx(Some(Ctx { sched: Arc::clone(&sched), task: 0 }));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    match result {
        Ok(()) => sched.task_finished(0, None),
        Err(p) if p.is::<AbortToken>() => sched.finish_quiet(0),
        Err(p) => {
            let msg = format!("task 0 panicked: {}", payload_message(p.as_ref()));
            {
                let mut st = sched.lock();
                if st.failure.is_none() || st.failure_is_placeholder {
                    let schedule = st
                        .failure
                        .take()
                        .map(|f| f.schedule)
                        .unwrap_or_else(|| schedule_string(&st.choices));
                    st.failure = Some(Failure { kind: FailureKind::Panic, message: msg, schedule });
                    st.failure_is_placeholder = false;
                }
                st.aborting = true;
                st.running = None;
                sched.cv.notify_all();
            }
            sched.finish_quiet(0);
        }
    }
    sched.wait_all_done();
    set_ctx(None);

    let mut st = sched.lock();
    if st.failure.is_none() {
        // A child panicked and nobody joined it: that is a failure too.
        let unjoined = st
            .tasks
            .iter()
            .enumerate()
            .find_map(|(i, t)| t.panic.as_ref().map(|p| (i, payload_message(p.as_ref()))));
        if let Some((i, msg)) = unjoined {
            st.failure = Some(Failure {
                kind: FailureKind::Panic,
                message: format!("task {i} panicked (never joined): {msg}"),
                schedule: schedule_string(&st.choices),
            });
        }
    }
    (std::mem::take(&mut st.trail), st.failure.take())
}

/// Exhaustively explore thread interleavings of `f` within the preemption
/// bound (or until the schedule budget runs out), reporting the first
/// failing interleaving with a replayable schedule.
///
/// `f` runs once per schedule and must be deterministic: same schedule,
/// same behavior. Threads must be spawned with [`crate::thread::spawn`] /
/// [`crate::thread::Builder`] and synchronize only through [`crate::sync`]
/// primitives created inside the closure.
pub fn explore(cfg: Config, f: impl Fn()) -> Report {
    assert!(current().is_none(), "explore() cannot be nested inside an exploration");
    let mut trail: Vec<Frame> = Vec::new();
    let mut schedules = 0u64;
    loop {
        schedules += 1;
        let (new_trail, failure) = run_one(&f, cfg, std::mem::take(&mut trail), None);
        trail = new_trail;
        if failure.is_some() {
            return Report { schedules, complete: false, failure };
        }
        if !advance_trail(&mut trail, cfg.preemption_bound) {
            return Report { schedules, complete: true, failure: None };
        }
        if schedules >= cfg.max_schedules {
            return Report { schedules, complete: false, failure: None };
        }
    }
}

/// Re-run `f` under one exact schedule (as produced in
/// [`Failure::schedule`]) and report what happened. A deterministic
/// closure reproduces the original failure identically; a divergence is
/// reported as [`FailureKind::ReplayDivergence`].
pub fn replay(schedule: &str, f: impl Fn()) -> Report {
    assert!(current().is_none(), "replay() cannot be nested inside an exploration");
    let forced: Vec<usize> = schedule
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        // PANICS: replay schedules are developer-supplied; a malformed token is a usage error worth failing loudly on.
        .map(|s| s.parse().expect("schedule tokens must be task ids"))
        .collect();
    let (_, failure) = run_one(&f, Config::default(), Vec::new(), Some(forced));
    Report { schedules: 1, complete: false, failure }
}
