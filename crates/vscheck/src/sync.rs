//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Outside an [`explore`](crate::explore) run every type here passes
//! straight through to its `std` counterpart (a thread-local context check
//! per operation). Inside a run, every operation is a scheduler choice
//! point: the calling model thread yields, the scheduler decides who runs
//! next, and blocking operations park the task in the scheduler rather
//! than in the OS.
//!
//! The model executes under sequential consistency: atomic orderings are
//! accepted for API compatibility and ignored (everything is `SeqCst`).

use crate::sched::{self, Ctx, Status};
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    TryLockError,
};

/// A mutex with the `std::sync::Mutex` locking API (poisoning included),
/// instrumented as a scheduler choice point in model runs.
pub struct Mutex<T> {
    id: usize,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { id: sched::new_obj_id(), inner: StdMutex::new(value) }
    }

    /// Acquire the mutex, blocking the calling (model) thread until it is
    /// available. Returns `Err` if a holder panicked, like `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => wrap_lock(self.inner.lock(), self, None),
            Some(ctx) => {
                // Choice point before the acquisition attempt, then contend:
                // on failure park until the holder releases, and re-contend
                // when scheduled (barging semantics, like std).
                ctx.sched.switch(ctx.task, Status::Runnable);
                loop {
                    match self.inner.try_lock() {
                        Ok(g) => return wrap_lock(Ok(g), self, Some(ctx)),
                        Err(TryLockError::Poisoned(p)) => {
                            return wrap_lock(Err(p), self, Some(ctx));
                        }
                        Err(TryLockError::WouldBlock) => {
                            ctx.sched.block_on_mutex(ctx.task, self.id);
                        }
                    }
                }
            }
        }
    }

    /// Consume the mutex and return its value (never blocks).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

fn wrap_lock<'a, T>(
    res: Result<StdMutexGuard<'a, T>, PoisonError<StdMutexGuard<'a, T>>>,
    lock: &'a Mutex<T>,
    ctx: Option<Ctx>,
) -> LockResult<MutexGuard<'a, T>> {
    match res {
        Ok(g) => Ok(MutexGuard { inner: Some(g), lock, ctx }),
        Err(p) => Err(PoisonError::new(MutexGuard { inner: Some(p.into_inner()), lock, ctx })),
    }
}

/// RAII guard for [`Mutex`]; releasing it is a scheduler choice point.
pub struct MutexGuard<'a, T> {
    /// `None` only transiently, while a condvar wait has released the lock.
    inner: Option<StdMutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    ctx: Option<Ctx>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // PANICS: `inner` is only None transiently inside `Condvar::wait`; guards are not user-visible in that window.
        self.inner.as_ref().expect("guard accessed while released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // PANICS: `inner` is only None transiently inside `Condvar::wait`; guards are not user-visible in that window.
        self.inner.as_mut().expect("guard accessed while released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let released = self.inner.take().is_some();
        if let (true, Some(ctx)) = (released, &self.ctx) {
            ctx.sched.mutex_released(self.lock.id);
            // Unwinding with a guard (poisoning path) must only release:
            // parking a panicking thread could deadlock the teardown.
            if !std::thread::panicking() {
                ctx.sched.switch(ctx.task, Status::Runnable);
            }
        }
    }
}

/// A condition variable with the `std::sync::Condvar` API. In model runs
/// waits are scheduler-managed: enqueueing is atomic with the mutex
/// release (no missed-notify window, matching `std`'s guarantee), wakeups
/// are FIFO, and there are **no spurious wakeups**.
pub struct Condvar {
    id: usize,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar { id: sched::new_obj_id(), inner: StdCondvar::new() }
    }

    /// Release the guard's mutex, block until notified, reacquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        // PANICS: the caller passed a live guard; `inner` is None only while parked inside this very function.
        let std_guard = guard.inner.take().expect("guard accessed while released");
        match guard.ctx.clone() {
            None => {
                let lock = guard.lock;
                drop(guard); // inert: inner already taken
                wrap_lock(self.inner.wait(std_guard), lock, None)
            }
            Some(ctx) => {
                let lock = guard.lock;
                drop(guard); // inert
                drop(std_guard); // release the real lock
                ctx.sched.mutex_released(lock.id);
                // Enqueue-and-park; enqueueing happens before any other
                // task can run, so a notify between release and park is
                // impossible in the model (as in std).
                ctx.sched.condvar_wait(ctx.task, self.id, lock.id);
                // Woken (or aborted — switch panics then): reacquire.
                loop {
                    match lock.inner.try_lock() {
                        Ok(g) => return wrap_lock(Ok(g), lock, Some(ctx)),
                        Err(TryLockError::Poisoned(p)) => {
                            return wrap_lock(Err(p), lock, Some(ctx));
                        }
                        Err(TryLockError::WouldBlock) => {
                            ctx.sched.block_on_mutex(ctx.task, lock.id);
                        }
                    }
                }
            }
        }
    }

    /// Wake one waiter (FIFO in the model). A notify with no waiter is
    /// lost, exactly like the real primitive.
    pub fn notify_one(&self) {
        self.notify(false);
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        self.notify(true);
    }

    fn notify(&self, all: bool) {
        match sched::current() {
            None => {
                if all {
                    self.inner.notify_all();
                } else {
                    self.inner.notify_one();
                }
            }
            Some(ctx) => {
                if !std::thread::panicking() {
                    // The notify itself is a choice point: schedules where
                    // it lands earlier/later relative to the waiters differ.
                    ctx.sched.switch(ctx.task, Status::Runnable);
                }
                ctx.sched.notify(self.id, all);
                // Insurance for (unsupported) mixed model/passthrough use:
                // a real waiter on the inner condvar is still woken.
                self.inner.notify_all();
            }
        }
    }
}

/// Instrumented atomic integer and boolean types.
///
/// Every access is a scheduler choice point in model runs; the requested
/// memory ordering is honored in passthrough mode and ignored (SeqCst) in
/// the model — weak-memory effects are out of scope (crate docs).
pub mod atomic {
    use crate::sched::{self, Status};
    pub use std::sync::atomic::Ordering;

    fn yield_point() {
        if let Some(ctx) = sched::current() {
            if !std::thread::panicking() {
                ctx.sched.switch(ctx.task, Status::Runnable);
            }
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Instrumented counterpart of the `std::sync::atomic` type of
            /// the same name (see module docs).
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $int) -> $name {
                    $name { inner: <$std>::new(v) }
                }

                /// Atomic load (choice point in model runs).
                pub fn load(&self, order: Ordering) -> $int {
                    yield_point();
                    self.inner.load(effective(order))
                }

                /// Atomic store (choice point in model runs).
                pub fn store(&self, v: $int, order: Ordering) {
                    yield_point();
                    self.inner.store(v, effective(order));
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_add(v, effective(order))
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.fetch_sub(v, effective(order))
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, v: $int, order: Ordering) -> $int {
                    yield_point();
                    self.inner.swap(v, effective(order))
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    yield_point();
                    self.inner.compare_exchange(
                        current,
                        new,
                        effective(success),
                        effective(failure),
                    )
                }

                /// Plain (non-choice-point) read via exclusive access.
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }
            }
        };
    }

    /// In model mode everything collapses to SeqCst; in passthrough the
    /// caller's ordering is used verbatim.
    fn effective(order: Ordering) -> Ordering {
        if sched::current().is_some() {
            Ordering::SeqCst
        } else {
            order
        }
    }

    int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Instrumented counterpart of `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic bool with the given initial value.
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Atomic load (choice point in model runs).
        pub fn load(&self, order: Ordering) -> bool {
            yield_point();
            self.inner.load(effective(order))
        }

        /// Atomic store (choice point in model runs).
        pub fn store(&self, v: bool, order: Ordering) {
            yield_point();
            self.inner.store(v, effective(order));
        }

        /// Atomic swap, returning the previous value.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.swap(v, effective(order))
        }
    }
}
