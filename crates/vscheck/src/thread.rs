//! Instrumented replacements for `std::thread` spawn/join.
//!
//! Outside an [`explore`](crate::explore) run these delegate to
//! `std::thread`. Inside a run, a spawned closure becomes a scheduler
//! *task*: it runs on a real OS thread, but only when the scheduler hands
//! it control, and `spawn`/`join` are themselves choice points.

use crate::sched::{self, AbortToken, Ctx, Sched, Status};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Factory with the `std::thread::Builder` API subset the workspace uses.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Create a builder with no name set.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Name the thread (shows up in scheduler failure reports and, in
    /// passthrough mode, in OS thread names / panic messages).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn the closure as an OS thread (passthrough) or a scheduler
    /// task (model run).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(n) = &self.name {
            builder = builder.name(n.clone());
        }
        match sched::current() {
            None => Ok(JoinHandle(Inner::Real(builder.spawn(f)?))),
            Some(ctx) => {
                let sched = Arc::clone(&ctx.sched);
                let task = sched.register_task(self.name);
                let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
                let thread_sched = Arc::clone(&sched);
                let thread_slot = Arc::clone(&slot);
                let real = builder.spawn(move || {
                    sched::set_ctx(Some(Ctx { sched: Arc::clone(&thread_sched), task }));
                    if !thread_sched.wait_until_scheduled(task) {
                        // Schedule aborted before this task ever ran.
                        thread_sched.finish_quiet(task);
                        return;
                    }
                    match panic::catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *thread_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            thread_sched.task_finished(task, None);
                        }
                        Err(p) if p.is::<AbortToken>() => thread_sched.finish_quiet(task),
                        Err(p) => thread_sched.task_finished(task, Some(p)),
                    }
                })?;
                // The spawn is a choice point: the child may run before the
                // parent's next step.
                ctx.sched.switch(ctx.task, Status::Runnable);
                Ok(JoinHandle(Inner::Model { sched, task, real: Some(real), slot }))
            }
        }
    }
}

/// Spawn a thread with no name; panics on OS spawn failure (like `std`).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    // PANICS: mirrors `std::thread::spawn`, which also panics when the OS cannot spawn.
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Voluntarily yield: a pure scheduler choice point in model runs,
/// `std::thread::yield_now` otherwise.
pub fn yield_now() {
    match sched::current() {
        None => std::thread::yield_now(),
        Some(ctx) => {
            if !std::thread::panicking() {
                ctx.sched.switch(ctx.task, Status::Runnable);
            }
        }
    }
}

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<Sched>,
        task: usize,
        real: Option<std::thread::JoinHandle<()>>,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Owned permission to join a thread, as `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its value or its panic
    /// payload (`Err`), exactly like `std`. In a model run the join is a
    /// blocking scheduler operation (and a deadlock candidate).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(h) => h.join(),
            Inner::Model { sched, task, mut real, slot } => {
                if let Some(ctx) = sched::current() {
                    sched.join_model(ctx.task, task);
                }
                // The task has finished (or the schedule is aborting, in
                // which case wait_until_scheduled/switch unblock it); the
                // OS thread exits promptly either way.
                if let Some(h) = real.take() {
                    let _ = h.join();
                }
                if let Some(p) = sched.take_panic(task) {
                    return Err(p);
                }
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    // No value and no panic: the schedule aborted under us;
                    // unwind this task too so teardown completes.
                    None => panic::panic_any(AbortToken),
                }
            }
        }
    }

    /// Whether the thread has finished (passthrough only; in model runs
    /// this is conservative and may report `false` for a finished task).
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Inner::Real(h) => h.is_finished(),
            Inner::Model { real, .. } => real.as_ref().is_some_and(|h| h.is_finished()),
        }
    }
}
