//! # vscheck — deterministic concurrency model checking
//!
//! The workspace's hottest paths rest on three hand-rolled low-level
//! concurrency protocols: the persistent `CpuPool` worker team
//! (`vsscore::pool`), the per-device job handoff in
//! `vsched::executor::DeviceEvaluator`, and the `vstrace` seqlock ring.
//! Happy-path integration tests exercise one or two interleavings of those
//! protocols per run; the races they can miss (a clobbered job slot, a
//! lost wakeup, a torn seqlock read) corrupt scores *silently*. This crate
//! is the repo's answer: a dependency-free, loom-style model checker that
//! **exhaustively explores thread interleavings** of a test closure within
//! a preemption bound, and prints a **replayable schedule** when an
//! interleaving fails.
//!
//! ## How it works
//!
//! Code under test is written against the drop-in primitives in
//! [`sync`] and [`thread`] (the production crates route through a
//! `crate::sync` facade that re-exports `std` types in normal builds and
//! these instrumented types under their `vscheck-model` feature — the
//! wrapper layer is a pure re-export, so normal builds are bit-for-bit
//! identical to using `std` directly).
//!
//! Inside [`explore`], every model thread is a real OS thread, but **at
//! most one is ever running**: each instrumented operation (mutex
//! lock/unlock, condvar wait/notify, atomic access, spawn/join) is a
//! *choice point* that hands control to a scheduler, which decides — per
//! the schedule being explored — which thread runs next. Schedules are
//! enumerated by depth-first search with **preemption bounding** (Musuvathi
//! & Qadeer's CHESS heuristic): at most `preemption_bound` involuntary
//! context switches per schedule, which finds the vast majority of real
//! concurrency bugs with a tractable state space.
//!
//! The checker detects and reports, with a replayable schedule trace:
//!
//! - **deadlocks** (every live thread blocked — includes lost wakeups,
//!   which strand a waiter that missed its `notify`),
//! - **assertion failures / panics** under some interleaving,
//! - **livelock** (a schedule exceeding the step budget),
//! - **nondeterminism** in the closure (the same choice prefix must
//!   reproduce the same runnable set; if not, the run is not checkable).
//!
//! ## What is (and is not) modeled
//!
//! - Interleavings are explored under **sequential consistency**. Weak
//!   memory reordering (`Relaxed`/`Acquire`/`Release` distinctions) is
//!   *not* modeled: a protocol can pass vscheck and still have an ordering
//!   bug on hardware. Orderings are accepted and ignored in model mode.
//! - Condvars have no spurious wakeups in the model; `notify_one` wakes
//!   waiters FIFO. A protocol must therefore be robust to *lost* wakeups
//!   (checked) but is not exercised against *spurious* ones.
//! - Non-atomic memory accessed between choice points executes as one
//!   indivisible step; tearing of plain (non-`sync`-mediated) data is
//!   checked at the protocol level (see the toy seqlock self-test), not at
//!   byte granularity.
//! - Everything an exploration touches must be created inside the closure
//!   and synchronized only through [`sync`]/[`thread`] primitives created
//!   there. Mixing scheduler-managed and free-running threads on the same
//!   primitive is unsupported.
//!
//! Outside an exploration the instrumented types transparently pass
//! through to their `std` counterparts, so a crate compiled with its
//! `vscheck-model` feature still runs its whole ordinary test suite
//! unchanged.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use vscheck::{explore, Config};
//!
//! let report = explore(Config::default(), || {
//!     let counter = Arc::new(vscheck::sync::atomic::AtomicU64::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let t = vscheck::thread::spawn(move || {
//!         // load-modify-store without atomicity: a lost update under
//!         // some interleaving, which the checker will find.
//!         let v = c2.load(std::sync::atomic::Ordering::SeqCst);
//!         c2.store(v + 1, std::sync::atomic::Ordering::SeqCst);
//!     });
//!     let v = counter.load(std::sync::atomic::Ordering::SeqCst);
//!     counter.store(v + 1, std::sync::atomic::Ordering::SeqCst);
//!     t.join().unwrap();
//!     // Not always 2: the racy schedule loses an update.
//!     assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
//! });
//! let failure = report.failure.expect("the race must be found");
//! // The failing schedule replays deterministically:
//! assert!(!failure.schedule.is_empty() || failure.schedule.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{explore, replay, Config, Failure, FailureKind, Report};
