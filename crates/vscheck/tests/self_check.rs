//! Self-tests for the model checker: known-broken protocols it must flag
//! (mutation-style "does the checker have teeth" targets, per ISSUE 4),
//! known-correct protocols it must pass exhaustively, and schedule-replay
//! reproduction.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use vscheck::sync::atomic::AtomicU64;
use vscheck::sync::{Condvar, Mutex};
use vscheck::{explore, replay, Config, FailureKind};

// ---------------------------------------------------------------------------
// Racy counter: the canonical lost-update bug.
// ---------------------------------------------------------------------------

fn racy_counter() {
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    let t = vscheck::thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = counter.load(Ordering::SeqCst);
    counter.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_lost_update_in_racy_counter() {
    let report = explore(Config::default(), racy_counter);
    let failure = report.failure.expect("the lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost update"), "message: {}", failure.message);
    assert!(!failure.schedule.is_empty());
}

#[test]
fn mutex_counter_passes_exhaustively() {
    let report = explore(Config::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = vscheck::thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *counter.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    report.assert_passed();
    assert!(report.complete, "state space must be exhausted");
    assert!(report.schedules > 1, "more than one interleaving explored");
}

// ---------------------------------------------------------------------------
// Schedule replay: a failure reproduces deterministically from its trace.
// ---------------------------------------------------------------------------

#[test]
fn failing_schedule_replays_identically() {
    let report = explore(Config::default(), racy_counter);
    let failure = report.failure.expect("failure expected");

    let replayed = replay(&failure.schedule, racy_counter)
        .failure
        .expect("replaying the schedule must reproduce the failure");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.message, failure.message);
    assert_eq!(replayed.schedule, failure.schedule);
}

#[test]
fn replay_of_wrong_schedule_reports_divergence() {
    // A schedule referencing a task id that never exists diverges.
    let report = replay("0,0,7,0", racy_counter);
    let failure = report.failure.expect("divergence expected");
    assert_eq!(failure.kind, FailureKind::ReplayDivergence);
}

// ---------------------------------------------------------------------------
// Deadlock detection: AB-BA lock ordering.
// ---------------------------------------------------------------------------

#[test]
fn finds_abba_deadlock() {
    let report = explore(Config::with_bound(1), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = vscheck::thread::Builder::new()
            .name("ba-locker".into())
            .spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            })
            .unwrap();
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join().unwrap();
    });
    let failure = report.failure.expect("AB-BA deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("deadlock"), "message: {}", failure.message);
    // The deadlocking schedule replays to the same deadlock.
    let replayed = replay(&failure.schedule, || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = vscheck::thread::Builder::new()
            .name("ba-locker".into())
            .spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            })
            .unwrap();
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join().unwrap();
    });
    assert_eq!(replayed.failure.expect("replay reproduces").kind, FailureKind::Deadlock);
}

// ---------------------------------------------------------------------------
// Seeded mutation #1: a lost-wakeup pool variant (the bug class PR 1 fixed
// by hand in CpuPool). The waiter re-acquires the lock between checking the
// condition and waiting, opening a window where the notify is lost.
// ---------------------------------------------------------------------------

fn lost_wakeup_pool(buggy: bool) {
    let ready = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (r2, cv2) = (Arc::clone(&ready), Arc::clone(&cv));
    let notifier = vscheck::thread::spawn(move || {
        *r2.lock().unwrap() = true;
        cv2.notify_one();
    });
    if buggy {
        // BUG: condition checked under one critical section, wait entered
        // under a second one — the notify can land in the window between
        // them and is lost, stranding the waiter forever.
        let is_ready = { *ready.lock().unwrap() };
        if !is_ready {
            let guard = ready.lock().unwrap();
            let _guard = cv.wait(guard).unwrap();
        }
    } else {
        // Correct: check and wait under one guard; the condvar re-checks.
        let mut guard = ready.lock().unwrap();
        while !*guard {
            guard = cv.wait(guard).unwrap();
        }
    }
    notifier.join().unwrap();
}

#[test]
fn catches_lost_wakeup_pool_mutation() {
    let report = explore(Config::default(), || lost_wakeup_pool(true));
    let failure = report.failure.expect("the lost wakeup must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock, "lost wakeup manifests as deadlock");
    // And it replays.
    let replayed = replay(&failure.schedule, || lost_wakeup_pool(true));
    assert_eq!(replayed.failure.expect("replay reproduces").kind, FailureKind::Deadlock);
}

#[test]
fn fixed_pool_wait_loop_passes_exhaustively() {
    let report = explore(Config::default(), || lost_wakeup_pool(false));
    report.assert_passed();
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Seeded mutation #2: a broken toy seqlock (the bug class the vstrace ring
// guards against). The broken writer updates the payload outside the
// odd-sequence window, so a single-attempt reader validates a clean
// sequence around a torn payload.
// ---------------------------------------------------------------------------

struct ToySeqlock {
    seq: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl ToySeqlock {
    fn new() -> ToySeqlock {
        ToySeqlock { seq: AtomicU64::new(0), a: AtomicU64::new(0), b: AtomicU64::new(0) }
    }

    /// Correct protocol: mark odd, write payload, publish even.
    fn write_correct(&self, v: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed); // odd: write in progress
        self.a.store(v, Ordering::Relaxed);
        self.b.store(v, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Relaxed); // even: published
    }

    /// BUG: payload written with the sequence still even — a reader
    /// sampling between the two stores sees a torn (a != b) payload and
    /// validates it against an unchanged even sequence.
    fn write_broken(&self, v: u64) {
        self.a.store(v, Ordering::Relaxed);
        self.b.store(v, Ordering::Relaxed);
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Relaxed);
    }

    /// Single-attempt validated read, like `vstrace::Ring::snapshot`:
    /// returns `None` (discard) rather than spinning, so the model never
    /// livelocks.
    fn read(&self) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::Relaxed);
        if s1 % 2 == 1 {
            return None;
        }
        let a = self.a.load(Ordering::Relaxed);
        let b = self.b.load(Ordering::Relaxed);
        let s2 = self.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        Some((a, b))
    }
}

fn seqlock_round(broken: bool) {
    let lock = Arc::new(ToySeqlock::new());
    let w = Arc::clone(&lock);
    let writer = vscheck::thread::spawn(move || {
        if broken {
            w.write_broken(7);
        } else {
            w.write_correct(7);
        }
    });
    if let Some((a, b)) = lock.read() {
        assert_eq!(a, b, "validated read returned a torn payload");
    }
    writer.join().unwrap();
}

#[test]
fn catches_torn_read_in_broken_seqlock() {
    let report = explore(Config::default(), || seqlock_round(true));
    let failure = report.failure.expect("the torn read must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("torn"), "message: {}", failure.message);
}

#[test]
fn correct_seqlock_passes_exhaustively() {
    let report = explore(Config::default(), || seqlock_round(false));
    report.assert_passed();
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Livelock / budget behavior.
// ---------------------------------------------------------------------------

#[test]
fn unbounded_spin_reports_step_limit() {
    let cfg = Config { max_steps: 200, ..Config::default() };
    let report = explore(cfg, || {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = vscheck::thread::spawn(move || f2.store(1, Ordering::SeqCst));
        // Spin-wait with no blocking operation: under the schedule that
        // never preempts the spinner, this loops forever.
        while flag.load(Ordering::SeqCst) == 0 {}
        t.join().unwrap();
    });
    let failure = report.failure.expect("step limit expected");
    assert_eq!(failure.kind, FailureKind::StepLimit);
}

#[test]
fn schedule_budget_stops_search_incomplete() {
    let cfg = Config { max_schedules: 1, ..Config::default() };
    let report = explore(cfg, || {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = vscheck::thread::spawn(move || *c2.lock().unwrap() += 1);
        *counter.lock().unwrap() += 1;
        t.join().unwrap();
    });
    assert!(report.failure.is_none());
    assert!(!report.complete, "one schedule cannot exhaust this space");
    assert_eq!(report.schedules, 1);
}

// ---------------------------------------------------------------------------
// Passthrough: outside explore() the types behave like std.
// ---------------------------------------------------------------------------

#[test]
fn passthrough_mutex_condvar_and_threads_work() {
    let ready = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (r2, cv2) = (Arc::clone(&ready), Arc::clone(&cv));
    let t = vscheck::thread::Builder::new()
        .name("passthrough".into())
        .spawn(move || {
            *r2.lock().unwrap() = true;
            cv2.notify_all();
            42u32
        })
        .unwrap();
    let mut guard = ready.lock().unwrap();
    while !*guard {
        guard = cv.wait(guard).unwrap();
    }
    drop(guard);
    assert_eq!(t.join().unwrap(), 42);

    let a = AtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
    assert_eq!(a.load(Ordering::Acquire), 7);
    assert_eq!(a.swap(1, Ordering::AcqRel), 7);
    assert_eq!(a.compare_exchange(1, 9, Ordering::SeqCst, Ordering::Relaxed), Ok(1));
    assert_eq!(a.load(Ordering::SeqCst), 9);
}

#[test]
fn passthrough_panic_propagates_through_join() {
    let t = vscheck::thread::spawn(|| panic!("boom"));
    let err = t.join().expect_err("panic must surface");
    assert_eq!(err.downcast_ref::<&str>(), Some(&"boom"));
}

// ---------------------------------------------------------------------------
// Panics inside a model run surface as failures with a schedule.
// ---------------------------------------------------------------------------

#[test]
fn child_panic_propagates_through_model_join() {
    let report = explore(Config::with_bound(0), || {
        let t = vscheck::thread::spawn(|| panic!("worker exploded"));
        let err = t.join().expect_err("panic must surface through model join");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"worker exploded"));
    });
    report.assert_passed();
}

#[test]
fn unjoined_child_panic_is_reported() {
    let report = explore(Config::with_bound(0), || {
        let _detached = vscheck::thread::spawn(|| panic!("nobody joins me"));
        // Handle dropped without join.
    });
    let failure = report.failure.expect("unjoined panic must be a failure");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("nobody joins me"), "message: {}", failure.message);
}
