//! Property-based tests for the math substrate.

use proptest::prelude::*;
use vsmath::{approx_eq, Histogram, Mat3, OnlineStats, Quat, RngStream, Vec3};

fn arb_vec3(r: f64) -> impl Strategy<Value = Vec3> {
    (-r..r, -r..r, -r..r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_quat() -> impl Strategy<Value = Quat> {
    (arb_vec3(1.0), -3.0..3.0f64)
        .prop_map(|(a, ang)| Quat::from_axis_angle(if a.norm() < 1e-6 { Vec3::Y } else { a }, ang))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cross_product_is_orthogonal(a in arb_vec3(50.0), b in arb_vec3(50.0)) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6 * a.norm() * b.norm() + 1e-9);
        prop_assert!(c.dot(b).abs() < 1e-6 * a.norm() * b.norm() + 1e-9);
    }

    #[test]
    fn triangle_inequality(a in arb_vec3(50.0), b in arb_vec3(50.0)) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn lerp_stays_on_segment(a in arb_vec3(10.0), b in arb_vec3(10.0), t in 0.0..1.0f64) {
        let p = a.lerp(b, t);
        prop_assert!(p.dist(a) + p.dist(b) <= a.dist(b) + 1e-9);
    }

    #[test]
    fn quat_mat_roundtrip(q in arb_quat()) {
        let back = Mat3::from_quat(q).to_quat();
        prop_assert!(q.angle_to(back) < 1e-8);
    }

    #[test]
    fn slerp_angle_interpolates_monotonically(a in arb_quat(), b in arb_quat()) {
        let total = a.angle_to(b);
        let quarter = a.angle_to(a.slerp(b, 0.25));
        let half = a.angle_to(a.slerp(b, 0.5));
        prop_assert!(quarter <= half + 1e-9);
        prop_assert!(half <= total + 1e-9);
    }

    #[test]
    fn histogram_conserves_count(
        xs in proptest::collection::vec(-1e3..1e3f64, 1..200),
        bins in 1usize..32,
    ) {
        let h = Histogram::auto(&xs, bins).unwrap();
        prop_assert_eq!(h.total() as usize, xs.len());
    }

    #[test]
    fn online_stats_merge_any_split(
        xs in proptest::collection::vec(-1e3..1e3f64, 2..100),
        cut_frac in 0.0..1.0f64,
    ) {
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..cut].iter().for_each(|&x| a.push(x));
        xs[cut..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert!(approx_eq(a.mean(), whole.mean(), 1e-9));
        prop_assert!(approx_eq(a.variance().max(1e-12), whole.variance().max(1e-12), 1e-6));
    }

    #[test]
    fn rng_in_ball_radius_respected(seed in any::<u64>(), r in 0.001..100.0f64) {
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..8 {
            prop_assert!(rng.in_ball(r).norm() <= r + 1e-9);
        }
    }

    #[test]
    fn rng_sample_indices_distinct(seed in any::<u64>(), n in 1usize..50, frac in 0.0..1.0f64) {
        let k = ((n as f64 * frac) as usize).min(n);
        let mut rng = RngStream::from_seed(seed);
        let mut s = rng.sample_indices(n, k);
        s.sort_unstable();
        let len_before = s.len();
        s.dedup();
        prop_assert_eq!(s.len(), len_before);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn mat3_determinant_multiplicative(q1 in arb_quat(), q2 in arb_quat(), s in 0.1..3.0f64) {
        let a = Mat3::from_quat(q1).scale(s);
        let b = Mat3::from_quat(q2);
        let lhs = (a * b).determinant();
        let rhs = a.determinant() * b.determinant();
        prop_assert!(approx_eq(lhs, rhs, 1e-8));
    }
}
