//! Deterministic seeded RNG streams.
//!
//! Metaheuristics are stochastic (paper §1), but reproduction requires
//! determinism: every independent metaheuristic execution — one per device,
//! per spot — draws from its own *stream* derived from a root seed and a
//! stream id, so results are identical regardless of which simulated device
//! a job lands on or in what order threads run.

use crate::{Quat, Vec3};

/// xoshiro256++ core (Blackman & Vigna) — a small, fast, high-quality
/// generator seeded from 32 bytes, standing in for `rand::rngs::StdRng`
/// in the offline build. Streams are reproducible across platforms: the
/// algorithm is pure integer arithmetic with no platform dependence.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(key: [u8; 32]) -> Xoshiro256 {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(key.chunks_exact(8)) {
            // PANICS: `chunks_exact(8)` yields exactly 8 bytes; the conversion cannot fail.
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point; displace it.
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// A deterministic random stream: a xoshiro256++ core seeded from a
/// (root, stream-id) pair via SplitMix64 mixing, so sibling streams are
/// decorrelated.
///
/// ```
/// use vsmath::RngStream;
///
/// // Streams with the same (root, id) replay identically...
/// let mut a = RngStream::derive(42, 7);
/// let mut b = RngStream::derive(42, 7);
/// assert_eq!(a.uniform(), b.uniform());
/// // ...and different ids are independent.
/// let mut c = RngStream::derive(42, 8);
/// assert_ne!(a.uniform(), c.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: Xoshiro256,
    root_seed: u64,
    stream_id: u64,
}

/// SplitMix64 finalizer — the standard cheap mixer for turning correlated
/// integers into decorrelated seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStream {
    /// The stream with id 0 for a root seed.
    pub fn from_seed(root_seed: u64) -> Self {
        Self::derive(root_seed, 0)
    }

    /// Derive stream `stream_id` of the root seed. Streams with different
    /// ids are statistically independent.
    pub fn derive(root_seed: u64, stream_id: u64) -> Self {
        let mixed = splitmix64(
            splitmix64(root_seed) ^ splitmix64(stream_id.wrapping_mul(0xA24B_AED4_963E_E407)),
        );
        let mut key = [0u8; 32];
        let mut s = mixed;
        for chunk in key.chunks_exact_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        RngStream { rng: Xoshiro256::from_seed(key), root_seed, stream_id }
    }

    /// Derive a child stream; children of distinct `(root, id)` pairs are
    /// disjoint. Used to hand each spot/individual its own substream.
    pub fn child(&self, child_id: u64) -> RngStream {
        RngStream::derive(splitmix64(self.root_seed ^ splitmix64(self.stream_id)), child_id)
    }

    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of a `next_u64`).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`; panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Lemire's multiply-shift reduction; the bias is < n / 2^64,
        // invisible at the range sizes used here.
        ((self.rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard-normal sample (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f64 {
        // Rejection-free polar-form Box–Muller would cache a value; the
        // simple form is plenty for mutation operators.
        let u1: f64 = self.uniform().max(1e-300);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniformly distributed point on the unit sphere (Marsaglia).
    pub fn unit_vector(&mut self) -> Vec3 {
        loop {
            let x = self.uniform_range(-1.0, 1.0);
            let y = self.uniform_range(-1.0, 1.0);
            let s = x * x + y * y;
            if s < 1.0 && s > 1e-12 {
                let f = 2.0 * (1.0 - s).sqrt();
                return Vec3::new(x * f, y * f, 1.0 - 2.0 * s);
            }
        }
    }

    /// Uniformly distributed point inside the ball of radius `r`.
    pub fn in_ball(&mut self, r: f64) -> Vec3 {
        // Inverse-CDF radius: u^(1/3) is uniform-in-volume.
        let dir = self.unit_vector();
        dir * (r * self.uniform().cbrt())
    }

    /// Uniform random rotation (Shoemake's subgroup algorithm).
    pub fn rotation(&mut self) -> Quat {
        let u1 = self.uniform();
        let u2 = self.uniform() * std::f64::consts::TAU;
        let u3 = self.uniform() * std::f64::consts::TAU;
        let a = (1.0 - u1).sqrt();
        let b = u1.sqrt();
        Quat::new(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos()).renormalize()
    }

    /// Small random rotation of at most `max_angle` radians — the rotational
    /// component of a local-search move.
    pub fn small_rotation(&mut self, max_angle: f64) -> Quat {
        let axis = self.unit_vector();
        let angle = self.uniform_range(-max_angle, max_angle);
        Quat::from_axis_angle(axis, angle)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngStream {
    /// Next raw 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.rng.next_u64() >> 32) as u32
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.rng.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.rng.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::from_seed(42);
        let mut b = RngStream::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = RngStream::derive(42, 0);
        let mut b = RngStream::derive(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_deterministic() {
        let parent = RngStream::derive(7, 3);
        let mut c1 = parent.child(5);
        let mut c2 = parent.child(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent.child(6);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = RngStream::from_seed(1);
        for _ in 0..1000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
            let w = r.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_reasonable() {
        let mut r = RngStream::from_seed(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_bounds() {
        let mut r = RngStream::from_seed(3);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
        assert_eq!(r.index(1), 0);
    }

    #[test]
    #[should_panic]
    fn index_zero_panics() {
        RngStream::from_seed(0).index(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::from_seed(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_vector_is_unit() {
        let mut r = RngStream::from_seed(6);
        for _ in 0..100 {
            let v = r.unit_vector();
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_vector_covers_octants() {
        let mut r = RngStream::from_seed(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = r.unit_vector();
            let o =
                (v.x > 0.0) as usize | ((v.y > 0.0) as usize) << 1 | ((v.z > 0.0) as usize) << 2;
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s), "octant coverage {seen:?}");
    }

    #[test]
    fn in_ball_respects_radius() {
        let mut r = RngStream::from_seed(8);
        for _ in 0..500 {
            assert!(r.in_ball(2.5).norm() <= 2.5 + 1e-12);
        }
    }

    #[test]
    fn rotation_is_unit_quaternion() {
        let mut r = RngStream::from_seed(9);
        for _ in 0..100 {
            assert!((r.rotation().norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn small_rotation_angle_bounded() {
        let mut r = RngStream::from_seed(10);
        for _ in 0..200 {
            assert!(r.small_rotation(0.2).angle() <= 0.2 + 1e-9);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::from_seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left identity (vanishingly unlikely)");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = RngStream::from_seed(12);
        let s = r.sample_indices(20, 8);
        assert_eq!(s.len(), 8);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 8);
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn sample_all_indices() {
        let mut r = RngStream::from_seed(13);
        let mut s = r.sample_indices(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }
}
