//! Axis-aligned bounding boxes.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box, used for molecule extents, spot search
/// regions and spatial-grid sizing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// An "empty" box that absorbs any point on the first `grow`.
    pub const EMPTY: Aabb =
        Aabb { min: Vec3::splat(f64::INFINITY), max: Vec3::splat(f64::NEG_INFINITY) };

    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Smallest box containing all `points`; [`Aabb::EMPTY`] for none.
    pub fn from_points(points: &[Vec3]) -> Aabb {
        points.iter().fold(Aabb::EMPTY, |bb, &p| bb.grown(p))
    }

    /// The box expanded to contain `p`.
    #[inline]
    pub fn grown(self, p: Vec3) -> Aabb {
        Aabb { min: self.min.min(p), max: self.max.max(p) }
    }

    /// The box inflated by `margin` on every side.
    pub fn inflated(self, margin: f64) -> Aabb {
        Aabb { min: self.min - Vec3::splat(margin), max: self.max + Vec3::splat(margin) }
    }

    /// Union of two boxes.
    pub fn union(self, o: Aabb) -> Aabb {
        Aabb { min: self.min.min(o.min), max: self.max.max(o.max) }
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when the box contains no points (min > max on any axis).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Edge lengths; zero vector for an empty box.
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Geometric center; `Vec3::ZERO` for an empty box.
    pub fn center(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            (self.min + self.max) * 0.5
        }
    }

    /// Length of the space diagonal.
    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_properties() {
        let bb = Aabb::EMPTY;
        assert!(bb.is_empty());
        assert_eq!(bb.extent(), Vec3::ZERO);
        assert_eq!(bb.center(), Vec3::ZERO);
        assert!(!bb.contains(Vec3::ZERO));
    }

    #[test]
    fn from_points_tight_bounds() {
        let pts = [Vec3::new(1.0, 5.0, -2.0), Vec3::new(-1.0, 2.0, 3.0), Vec3::new(0.0, 0.0, 0.0)];
        let bb = Aabb::from_points(&pts);
        assert_eq!(bb.min, Vec3::new(-1.0, 0.0, -2.0));
        assert_eq!(bb.max, Vec3::new(1.0, 5.0, 3.0));
        for p in pts {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn single_point_box() {
        let bb = Aabb::from_points(&[Vec3::X]);
        assert!(!bb.is_empty());
        assert_eq!(bb.extent(), Vec3::ZERO);
        assert_eq!(bb.center(), Vec3::X);
        assert!(bb.contains(Vec3::X));
    }

    #[test]
    fn grow_absorbs_point() {
        let bb = Aabb::EMPTY.grown(Vec3::new(2.0, 2.0, 2.0));
        assert!(bb.contains(Vec3::new(2.0, 2.0, 2.0)));
        assert!(!bb.contains(Vec3::ZERO));
    }

    #[test]
    fn inflated_margin() {
        let bb = Aabb::from_points(&[Vec3::ZERO, Vec3::splat(1.0)]).inflated(0.5);
        assert_eq!(bb.min, Vec3::splat(-0.5));
        assert_eq!(bb.max, Vec3::splat(1.5));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::from_points(&[Vec3::ZERO, Vec3::splat(1.0)]);
        let b = Aabb::from_points(&[Vec3::splat(2.0), Vec3::splat(3.0)]);
        let u = a.union(b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(2.5)));
        assert_eq!(u.extent(), Vec3::splat(3.0));
    }

    #[test]
    fn center_and_diagonal() {
        let bb = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 1.0));
        assert_eq!(bb.center(), Vec3::new(1.0, 1.0, 0.5));
        assert!((bb.diagonal() - 3.0) < 1e-12);
    }
}
