//! 3×3 matrices: rotation conversion, covariance accumulation and the
//! symmetric eigen-solver behind Kabsch alignment (`vsmol::rmsd`).

use crate::{Quat, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A row-major 3×3 matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows × columns: `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };
    pub const IDENTITY: Mat3 = Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { m: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]] }
    }

    /// Outer product `a bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        Mat3 {
            m: [
                [a.x * b.x, a.x * b.y, a.x * b.z],
                [a.y * b.x, a.y * b.y, a.y * b.z],
                [a.z * b.x, a.z * b.y, a.z * b.z],
            ],
        }
    }

    /// Rotation matrix of a unit quaternion.
    pub fn from_quat(q: Quat) -> Mat3 {
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3 {
            m: [
                [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
                [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
                [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
            ],
        }
    }

    /// Convert a (proper) rotation matrix back to a unit quaternion
    /// (Shepperd's method, numerically stable branch selection).
    pub fn to_quat(&self) -> Quat {
        let m = &self.m;
        let tr = m[0][0] + m[1][1] + m[2][2];
        let q = if tr > 0.0 {
            let s = (tr + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m[2][1] - m[1][2]) / s,
                (m[0][2] - m[2][0]) / s,
                (m[1][0] - m[0][1]) / s,
            )
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m[2][1] - m[1][2]) / s,
                0.25 * s,
                (m[0][1] + m[1][0]) / s,
                (m[0][2] + m[2][0]) / s,
            )
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m[0][2] - m[2][0]) / s,
                (m[0][1] + m[1][0]) / s,
                0.25 * s,
                (m[1][2] + m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m[1][0] - m[0][1]) / s,
                (m[0][2] + m[2][0]) / s,
                (m[1][2] + m[2][1]) / s,
                0.25 * s,
            )
        };
        q.renormalize()
    }

    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3 {
            m: [
                [m[0][0], m[1][0], m[2][0]],
                [m[0][1], m[1][1], m[2][1]],
                [m[0][2], m[1][2], m[2][2]],
            ],
        }
    }

    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        let m = &self.m;
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    pub fn scale(&self, s: f64) -> Mat3 {
        let mut out = *self;
        for r in &mut out.m {
            for v in r {
                *v *= s;
            }
        }
        out
    }

    /// Eigen-decomposition of a *symmetric* matrix by cyclic Jacobi
    /// rotations. Returns `(eigenvalues, eigenvectors)` with eigenvalues
    /// descending and `eigenvectors.mul_vec(e_i)`-columns orthonormal
    /// (column `i` of the returned matrix pairs with eigenvalue `i`).
    // Index loops mirror the textbook Jacobi rotation formulas; iterator
    // forms obscure the row/column symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn symmetric_eigen(&self) -> ([f64; 3], Mat3) {
        let mut a = self.m;
        let mut v = Mat3::IDENTITY.m;
        for _sweep in 0..64 {
            // Off-diagonal magnitude.
            let off = a[0][1] * a[0][1] + a[0][2] * a[0][2] + a[1][2] * a[1][2];
            if off < 1e-24 {
                break;
            }
            for (p, q) in [(0usize, 1usize), (0, 2), (1, 2)] {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the Jacobi rotation G(p,q,θ) on both sides.
                for k in 0..3 {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..3 {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..3 {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
        // Sort eigenpairs descending.
        let mut pairs: Vec<(f64, [f64; 3])> =
            (0..3).map(|i| (a[i][i], [v[0][i], v[1][i], v[2][i]])).collect();
        // PANICS: Jacobi iteration on finite input yields finite eigenvalues.
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        let vals = [pairs[0].0, pairs[1].0, pairs[2].0];
        let mut vecs = Mat3::ZERO;
        for (i, (_, col)) in pairs.iter().enumerate() {
            for r in 0..3 {
                vecs.m[r][i] = col[r];
            }
        }
        (vals, vecs)
    }

    /// Column `i` as a vector.
    pub fn col(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[0][i], self.m[1][i], self.m[2][i])
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + o.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - o.m[r][c];
            }
        }
        out
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] =
                    self.m[r][0] * o.m[0][c] + self.m[r][1] * o.m[1][c] + self.m[r][2] * o.m[2][c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, RngStream};

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
        assert_eq!(Mat3::IDENTITY.determinant(), 1.0);
    }

    #[test]
    fn quat_matrix_roundtrip() {
        let mut rng = RngStream::from_seed(1);
        for _ in 0..50 {
            let q = rng.rotation();
            let m = Mat3::from_quat(q);
            let q2 = m.to_quat();
            assert!(q.angle_to(q2) < 1e-9, "roundtrip drift {}", q.angle_to(q2));
        }
    }

    #[test]
    fn rotation_matrix_matches_quaternion_rotation() {
        let mut rng = RngStream::from_seed(2);
        for _ in 0..30 {
            let q = rng.rotation();
            let m = Mat3::from_quat(q);
            let v = rng.in_ball(10.0);
            assert!((m.mul_vec(v) - q.rotate(v)).max_abs_component() < 1e-10);
        }
    }

    #[test]
    fn rotation_matrix_has_unit_determinant() {
        let mut rng = RngStream::from_seed(3);
        for _ in 0..20 {
            let m = Mat3::from_quat(rng.rotation());
            assert!(approx_eq(m.determinant(), 1.0, 1e-10));
        }
    }

    #[test]
    fn transpose_and_product() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 10.0),
        );
        assert_eq!(a.transpose().transpose(), a);
        let i = a * Mat3::IDENTITY;
        assert_eq!(i, a);
        // (AB)ᵀ = BᵀAᵀ
        let b = Mat3::outer(Vec3::new(1.0, 0.5, -1.0), Vec3::new(2.0, 1.0, 0.0));
        assert_eq!((a * b).transpose(), b.transpose() * a.transpose());
    }

    #[test]
    fn outer_product_rank_one() {
        let o = Mat3::outer(Vec3::X, Vec3::Y);
        assert_eq!(o.m[0][1], 1.0);
        assert_eq!(o.determinant(), 0.0);
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let d = Mat3::from_rows(
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        );
        let (vals, _) = d.symmetric_eigen();
        assert!(approx_eq(vals[0], 3.0, 1e-12));
        assert!(approx_eq(vals[1], 2.0, 1e-12));
        assert!(approx_eq(vals[2], 1.0, 1e-12));
    }

    #[test]
    fn symmetric_eigen_reconstructs_matrix() {
        // A = V Λ Vᵀ for a random symmetric matrix.
        let mut rng = RngStream::from_seed(4);
        for _ in 0..20 {
            let a = rng.in_ball(2.0);
            let b = rng.in_ball(2.0);
            let sym = Mat3::outer(a, a) + Mat3::outer(b, b);
            let (vals, vecs) = sym.symmetric_eigen();
            let lambda = Mat3::from_rows(
                Vec3::new(vals[0], 0.0, 0.0),
                Vec3::new(0.0, vals[1], 0.0),
                Vec3::new(0.0, 0.0, vals[2]),
            );
            let back = vecs * lambda * vecs.transpose();
            for r in 0..3 {
                for c in 0..3 {
                    assert!(
                        (back.m[r][c] - sym.m[r][c]).abs() < 1e-9,
                        "reconstruction failed at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let sym = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0))
            + Mat3::outer(Vec3::new(-1.0, 0.5, 0.0), Vec3::new(-1.0, 0.5, 0.0));
        let (_, vecs) = sym.symmetric_eigen();
        for i in 0..3 {
            for j in 0..3 {
                let d = vecs.col(i).dot(vecs.col(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-9, "col {i}·col {j} = {d}");
            }
        }
    }

    #[test]
    fn eigenvalues_of_psd_are_nonnegative() {
        let mut rng = RngStream::from_seed(5);
        for _ in 0..10 {
            let mut s = Mat3::ZERO;
            for _ in 0..5 {
                let v = rng.in_ball(3.0);
                s = s + Mat3::outer(v, v);
            }
            let (vals, _) = s.symmetric_eigen();
            assert!(vals.iter().all(|&l| l > -1e-9), "{vals:?}");
        }
    }
}
