//! Unit quaternions for ligand orientation.
//!
//! A docking *conformation* in this stack is a rigid pose: a translation plus
//! a unit quaternion. Quaternions are the standard parameterization in
//! docking codes (AutoDock, BINDSURF) because they compose cheaply and have
//! no gimbal lock, which matters for the local-search move operators.

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`. Rotation quaternions are kept unit-norm
/// by construction; [`Quat::renormalize`] guards against drift after long
/// chains of composition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    pub w: f64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Quat {
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis`. A zero axis yields the
    /// identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        match axis.normalized() {
            None => Quat::IDENTITY,
            Some(u) => {
                let (s, c) = (angle * 0.5).sin_cos();
                Quat::new(c, u.x * s, u.y * s, u.z * s)
            }
        }
    }

    /// Rotation from intrinsic Euler angles (ZYX convention: yaw, pitch,
    /// roll), handy for test fixtures.
    pub fn from_euler(yaw: f64, pitch: f64, roll: f64) -> Quat {
        let qz = Quat::from_axis_angle(Vec3::Z, yaw);
        let qy = Quat::from_axis_angle(Vec3::Y, pitch);
        let qx = Quat::from_axis_angle(Vec3::X, roll);
        qz * qy * qx
    }

    #[inline]
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Rescale to unit norm, falling back to the identity for degenerate
    /// (near-zero) quaternions.
    pub fn renormalize(self) -> Quat {
        let n = self.norm();
        if n < 1e-12 {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotate a vector by this quaternion using the optimized
    /// `v + 2 t×(t×v + w v)` form (fewer multiplies than `q v q*`).
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let t = Vec3::new(self.x, self.y, self.z);
        let u = t.cross(v) * 2.0;
        v + u * self.w + t.cross(u)
    }

    /// Angle (radians, in `[0, π]`) of the rotation this quaternion encodes.
    pub fn angle(self) -> f64 {
        2.0 * self.w.abs().clamp(0.0, 1.0).acos()
    }

    /// Geodesic distance between two rotations, in radians — the rotation
    /// metric used by the tabu/diversity checks in `metaheur`.
    pub fn angle_to(self, other: Quat) -> f64 {
        (self.conjugate() * other).renormalize().angle()
    }

    /// Dot product of the two quaternions viewed as 4-vectors.
    #[inline]
    pub fn dot(self, o: Quat) -> f64 {
        self.w * o.w + self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Spherical linear interpolation between two unit quaternions,
    /// taking the short arc.
    pub fn slerp(self, other: Quat, t: f64) -> Quat {
        let mut d = self.dot(other);
        let mut o = other;
        if d < 0.0 {
            // Take the short way around the 4-sphere.
            d = -d;
            o = Quat::new(-other.w, -other.x, -other.y, -other.z);
        }
        if d > 1.0 - 1e-9 {
            // Nearly parallel: fall back to nlerp to avoid division by ~0.
            return Quat::new(
                self.w + (o.w - self.w) * t,
                self.x + (o.x - self.x) * t,
                self.y + (o.y - self.y) * t,
                self.z + (o.z - self.z) * t,
            )
            .renormalize();
        }
        let theta = d.acos();
        let s = theta.sin();
        let a = ((1.0 - t) * theta).sin() / s;
        let b = (t * theta).sin() / s;
        Quat::new(
            a * self.w + b * o.w,
            a * self.x + b * o.x,
            a * self.y + b * o.y,
            a * self.z + b * o.z,
        )
        .renormalize()
    }

    /// True when all components are finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Mul for Quat {
    type Output = Quat;
    /// Hamilton product: `(a * b).rotate(v) == a.rotate(b.rotate(v))`.
    #[inline]
    fn mul(self, o: Quat) -> Quat {
        Quat::new(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_eq(a: Vec3, b: Vec3) {
        assert!((a - b).max_abs_component() < 1e-9, "{a:?} != {b:?}");
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert_vec_eq(q.rotate(Vec3::X), Vec3::Y);
        assert_vec_eq(q.rotate(Vec3::Y), -Vec3::X);
        assert_vec_eq(q.rotate(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn half_turn_about_arbitrary_axis() {
        let axis = Vec3::new(1.0, 1.0, 0.0);
        let q = Quat::from_axis_angle(axis, PI);
        // A vector on the axis is unchanged.
        assert_vec_eq(q.rotate(axis), axis);
        // A perpendicular vector is negated.
        let perp = Vec3::new(1.0, -1.0, 0.0);
        assert_vec_eq(q.rotate(perp), -perp);
    }

    #[test]
    fn zero_axis_gives_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_axis_angle(Vec3::X, 0.3);
        let b = Quat::from_axis_angle(Vec3::Y, 1.1);
        let v = Vec3::new(0.2, -0.5, 0.9);
        assert_vec_eq((a * b).rotate(v), a.rotate(b.rotate(v)));
    }

    #[test]
    fn conjugate_inverts_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.77);
        let v = Vec3::new(4.0, -1.0, 0.5);
        assert_vec_eq(q.conjugate().rotate(q.rotate(v)), v);
    }

    #[test]
    fn rotation_preserves_norm() {
        let q = Quat::from_axis_angle(Vec3::new(0.3, -1.0, 2.0), 2.2);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(approx_eq(q.rotate(v).norm(), v.norm(), 1e-12));
    }

    #[test]
    fn angle_extraction() {
        let q = Quat::from_axis_angle(Vec3::Z, 1.25);
        assert!(approx_eq(q.angle(), 1.25, 1e-12));
        assert!(approx_eq(Quat::IDENTITY.angle(), 0.0, 1e-12));
    }

    #[test]
    fn angle_between_rotations() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.5);
        let b = Quat::from_axis_angle(Vec3::Z, 1.3);
        assert!(approx_eq(a.angle_to(b), 0.8, 1e-9));
        assert!(approx_eq(a.angle_to(a), 0.0, 1e-9));
    }

    #[test]
    fn slerp_endpoints() {
        let a = Quat::from_axis_angle(Vec3::X, 0.2);
        let b = Quat::from_axis_angle(Vec3::Y, 1.5);
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-9);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-9);
    }

    #[test]
    fn slerp_midpoint_is_half_angle() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, 1.0);
        let m = a.slerp(b, 0.5);
        assert!(approx_eq(m.angle(), 0.5, 1e-9));
    }

    #[test]
    fn slerp_takes_short_arc() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        // Same rotation, opposite 4-vector sign.
        let b_rot = Quat::from_axis_angle(Vec3::Z, 0.3);
        let b = Quat::new(-b_rot.w, -b_rot.x, -b_rot.y, -b_rot.z);
        let m = a.slerp(b, 0.5);
        assert!(approx_eq(m.angle(), 0.2, 1e-9));
    }

    #[test]
    fn renormalize_degenerate_is_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).renormalize(), Quat::IDENTITY);
    }

    #[test]
    fn euler_yaw_only_matches_axis_angle() {
        let q = Quat::from_euler(0.7, 0.0, 0.0);
        let r = Quat::from_axis_angle(Vec3::Z, 0.7);
        assert!(q.angle_to(r) < 1e-9);
    }

    #[test]
    fn unit_norm_after_construction() {
        let q = Quat::from_axis_angle(Vec3::new(3.0, -2.0, 0.5), 2.9);
        assert!(approx_eq(q.norm(), 1.0, 1e-12));
    }
}
