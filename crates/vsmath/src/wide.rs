//! Portable wide-lane arithmetic: an explicit 8-lane `f32` vector.
//!
//! The grid-interpolation scoring path (`vsscore::grid_potential`) wants
//! SIMD-shaped code — 8 ligand atoms per step, lane-parallel trilinear
//! weights — without `unsafe`, target-feature detection, or a nightly
//! `std::simd` dependency. [`F32x8`] is that shape: a `[f32; 8]` newtype
//! whose element-wise operators compile to straight-line lane loops that
//! LLVM auto-vectorizes to `vmulps`/`vaddps` on any AVX-capable target and
//! degrades to scalar code everywhere else, with **bit-identical results
//! either way** (the ops are plain IEEE-754 mul/add per lane; no FMA
//! contraction, no reassociation).
//!
//! The horizontal sum is a fixed pairwise tree so that reductions are part
//! of the kernel's definition (DESIGN §7: summation order is part of each
//! kernel): `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.

use std::ops::{Add, Mul, Sub};

/// Eight `f32` lanes with element-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// All lanes zero.
    pub const ZERO: F32x8 = F32x8([0.0; 8]);

    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; 8])
    }

    /// Lanes from an array.
    #[inline]
    pub fn from_array(a: [f32; 8]) -> F32x8 {
        F32x8(a)
    }

    /// The lanes as an array.
    #[inline]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }

    /// Gather one lane per index: `out[l] = f[idx[l]]`.
    ///
    /// # Panics
    /// Panics (via slice indexing) if any index is out of bounds.
    #[inline]
    pub fn gather(f: &[f32], idx: &[usize; 8]) -> F32x8 {
        let mut out = [0f32; 8];
        for l in 0..8 {
            out[l] = f[idx[l]];
        }
        F32x8(out)
    }

    /// Horizontal sum over the fixed pairwise tree
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — the reduction order every
    /// caller (wide or scalar-fallback) must share for bit-identity.
    #[inline]
    pub fn horizontal_sum(self) -> f32 {
        let l = self.0;
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }
}

impl Add for F32x8 {
    type Output = F32x8;
    #[inline]
    fn add(self, rhs: F32x8) -> F32x8 {
        let mut out = [0f32; 8];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] + rhs.0[l];
        }
        F32x8(out)
    }
}

impl Sub for F32x8 {
    type Output = F32x8;
    #[inline]
    fn sub(self, rhs: F32x8) -> F32x8 {
        let mut out = [0f32; 8];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] - rhs.0[l];
        }
        F32x8(out)
    }
}

impl Mul for F32x8 {
    type Output = F32x8;
    #[inline]
    fn mul(self, rhs: F32x8) -> F32x8 {
        let mut out = [0f32; 8];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] * rhs.0[l];
        }
        F32x8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = F32x8::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!((a + b).to_array(), [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!((a - b).to_array(), [-1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a * b).to_array(), [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn horizontal_sum_matches_tree_order() {
        let v = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let want = ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
        assert_eq!(F32x8::from_array(v).horizontal_sum().to_bits(), want.to_bits());
    }

    #[test]
    fn gather_indexes_lanes() {
        let f = [10.0f32, 11.0, 12.0, 13.0, 14.0];
        let g = F32x8::gather(&f, &[4, 3, 2, 1, 0, 0, 1, 2]);
        assert_eq!(g.to_array(), [14.0, 13.0, 12.0, 11.0, 10.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn zero_and_splat() {
        assert_eq!(F32x8::ZERO.horizontal_sum(), 0.0);
        assert_eq!(F32x8::splat(1.5).horizontal_sum(), 12.0);
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        F32x8::gather(&[1.0], &[0, 0, 0, 0, 0, 0, 0, 1]);
    }
}
