//! Streaming and batch statistics used by the benchmark harness and the
//! warm-up performance-monitoring phase of the heterogeneous scheduler.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, o: &OnlineStats) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = o.clone();
            return;
        }
        let n = self.n + o.n;
        let delta = o.mean - self.mean;
        let mean = self.mean + delta * o.n as f64 / n as f64;
        let m2 = self.m2 + o.m2 + delta * delta * (self.n as f64 * o.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// Median of a slice (averages the two central elements for even lengths).
/// Returns 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    // PANICS: documented contract — median input must be NaN-free.
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
/// Used to summarize speed-up ratios across experiments.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.variance(), 4.0, 1e-12));
        assert!(approx_eq(s.stddev(), 2.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..33].iter().for_each(|&x| a.push(x));
        xs[33..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!(approx_eq(a.mean(), whole.mean(), 1e-10));
        assert!(approx_eq(a.variance(), whole.variance(), 1e-10));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(approx_eq(geomean(&[1.0, 4.0]), 2.0, 1e-12));
        assert!(approx_eq(geomean(&[2.0, 8.0]), 4.0, 1e-12));
        assert_eq!(geomean(&[]), 0.0);
    }
}
