//! Uniform spatial hash grid for neighbor queries.
//!
//! Two hot consumers: cutoff-based scoring in `vsscore` (find receptor atoms
//! within the interaction cutoff of a ligand atom) and surface/spot
//! detection in `vsmol` (find atoms near a candidate surface probe).

use crate::{Aabb, Vec3};

/// A uniform grid over a point cloud. Cell size should be at least the query
/// radius for single-shell queries; [`SpatialGrid::for_each_within`] handles
/// any radius by scanning the necessary cell range.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    origin: Vec3,
    dims: [usize; 3],
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries` for cell `c`.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Vec3>,
}

impl SpatialGrid {
    /// Build a grid with the given cell size over `points`.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or any point is
    /// non-finite.
    pub fn build(points: &[Vec3], cell_size: f64) -> SpatialGrid {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(points.iter().all(|p| p.is_finite()), "non-finite point in grid input");

        let bb = Aabb::from_points(points);
        let (origin, extent) =
            if bb.is_empty() { (Vec3::ZERO, Vec3::ZERO) } else { (bb.min, bb.extent()) };
        let dims = [
            (extent.x / cell_size).floor() as usize + 1,
            (extent.y / cell_size).floor() as usize + 1,
            (extent.z / cell_size).floor() as usize + 1,
        ];
        let ncells = dims[0] * dims[1] * dims[2];

        // Counting sort into CSR layout: one pass to count, one to place.
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Vec3| -> usize {
            let ix = (((p.x - origin.x) / cell_size) as usize).min(dims[0] - 1);
            let iy = (((p.y - origin.y) / cell_size) as usize).min(dims[1] - 1);
            let iz = (((p.z - origin.z) / cell_size) as usize).min(dims[2] - 1);
            (iz * dims[1] + iy) * dims[0] + ix
        };
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        SpatialGrid { cell: cell_size, origin, dims, starts, entries, points: points.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Invoke `f(index, point, dist_sq)` for every stored point within
    /// `radius` of `q`.
    pub fn for_each_within<F: FnMut(usize, Vec3, f64)>(&self, q: Vec3, radius: f64, mut f: F) {
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        let lo = q - Vec3::splat(radius);
        let hi = q + Vec3::splat(radius);
        let clamp_cell = |v: f64, d: usize| -> usize {
            if v < 0.0 {
                0
            } else {
                (v as usize).min(d - 1)
            }
        };
        let ix0 = clamp_cell((lo.x - self.origin.x) / self.cell, self.dims[0]);
        let iy0 = clamp_cell((lo.y - self.origin.y) / self.cell, self.dims[1]);
        let iz0 = clamp_cell((lo.z - self.origin.z) / self.cell, self.dims[2]);
        let ix1 = clamp_cell((hi.x - self.origin.x) / self.cell, self.dims[0]);
        let iy1 = clamp_cell((hi.y - self.origin.y) / self.cell, self.dims[1]);
        let iz1 = clamp_cell((hi.z - self.origin.z) / self.cell, self.dims[2]);

        for iz in iz0..=iz1 {
            for iy in iy0..=iy1 {
                let row = (iz * self.dims[1] + iy) * self.dims[0];
                let s = self.starts[row + ix0] as usize;
                let e = self.starts[row + ix1 + 1] as usize;
                // Cells along x are contiguous in CSR order, so one slice
                // covers the whole x-run of this (y,z) row.
                for &idx in &self.entries[s..e] {
                    let p = self.points[idx as usize];
                    let d2 = p.dist_sq(q);
                    if d2 <= r2 {
                        f(idx as usize, p, d2);
                    }
                }
            }
        }
    }

    /// Collect indices of all points within `radius` of `q`.
    pub fn within(&self, q: Vec3, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |i, _, _| out.push(i));
        out
    }

    /// Number of points within `radius` of `q`.
    pub fn count_within(&self, q: Vec3, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(q, radius, |_, _, _| n += 1);
        n
    }

    /// Nearest stored point to `q`, if any, as `(index, dist)`.
    pub fn nearest(&self, q: Vec3) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        // Expanding-radius search; falls back to brute force when the grid
        // is sparse relative to the query point.
        let mut radius = self.cell;
        for _ in 0..32 {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_within(q, radius, |i, _, d2| {
                if best.is_none_or(|(_, bd)| d2 < bd * bd) {
                    best = Some((i, d2.sqrt()));
                }
            });
            if let Some(b) = best {
                return Some(b);
            }
            radius *= 2.0;
        }
        // Brute force fallback (pathological geometry).
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.dist(q)))
            // PANICS: distances of finite points are finite, so the comparison is total.
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStream;

    fn brute_within(points: &[Vec3], q: Vec3, r: f64) -> Vec<usize> {
        points.iter().enumerate().filter(|(_, p)| p.dist_sq(q) <= r * r).map(|(i, _)| i).collect()
    }

    #[test]
    fn empty_grid() {
        let g = SpatialGrid::build(&[], 1.0);
        assert!(g.is_empty());
        assert_eq!(g.within(Vec3::ZERO, 10.0), Vec::<usize>::new());
        assert_eq!(g.nearest(Vec3::ZERO), None);
    }

    #[test]
    fn single_point() {
        let g = SpatialGrid::build(&[Vec3::new(1.0, 2.0, 3.0)], 2.0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.within(Vec3::new(1.0, 2.0, 3.0), 0.1), vec![0]);
        assert_eq!(g.within(Vec3::ZERO, 0.5), Vec::<usize>::new());
        let (i, d) = g.nearest(Vec3::ZERO).unwrap();
        assert_eq!(i, 0);
        assert!((d - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_random() {
        let mut rng = RngStream::from_seed(99);
        let points: Vec<Vec3> = (0..500)
            .map(|_| {
                Vec3::new(
                    rng.uniform_range(-10.0, 10.0),
                    rng.uniform_range(-10.0, 10.0),
                    rng.uniform_range(-10.0, 10.0),
                )
            })
            .collect();
        let g = SpatialGrid::build(&points, 2.5);
        for _ in 0..50 {
            let q = Vec3::new(
                rng.uniform_range(-12.0, 12.0),
                rng.uniform_range(-12.0, 12.0),
                rng.uniform_range(-12.0, 12.0),
            );
            let r = rng.uniform_range(0.5, 6.0);
            let mut got = g.within(q, r);
            let mut want = brute_within(&points, q, r);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {q:?} r={r}");
        }
    }

    #[test]
    fn radius_larger_than_grid() {
        let points = vec![Vec3::ZERO, Vec3::splat(1.0), Vec3::splat(-1.0)];
        let g = SpatialGrid::build(&points, 0.5);
        assert_eq!(g.within(Vec3::ZERO, 100.0).len(), 3);
    }

    #[test]
    fn query_far_outside_bounds() {
        let points = vec![Vec3::ZERO, Vec3::X];
        let g = SpatialGrid::build(&points, 1.0);
        assert!(g.within(Vec3::splat(1000.0), 1.0).is_empty());
        assert_eq!(g.count_within(Vec3::splat(1000.0), 2000.0), 2);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = RngStream::from_seed(7);
        let points: Vec<Vec3> = (0..200).map(|_| rng.in_ball(20.0)).collect();
        let g = SpatialGrid::build(&points, 3.0);
        for _ in 0..20 {
            let q = rng.in_ball(30.0);
            let (gi, gd) = g.nearest(q).unwrap();
            let (bi, bd) = points
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!((gd - bd).abs() < 1e-9, "grid ({gi},{gd}) vs brute ({bi},{bd})");
        }
    }

    #[test]
    fn coincident_points_all_found() {
        let points = vec![Vec3::X; 5];
        let g = SpatialGrid::build(&points, 1.0);
        assert_eq!(g.within(Vec3::X, 1e-9).len(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_cell_size_panics() {
        SpatialGrid::build(&[Vec3::ZERO], 0.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_point_panics() {
        SpatialGrid::build(&[Vec3::new(f64::NAN, 0.0, 0.0)], 1.0);
    }

    #[test]
    fn negative_radius_finds_nothing() {
        let g = SpatialGrid::build(&[Vec3::ZERO], 1.0);
        assert!(g.within(Vec3::ZERO, -1.0).is_empty());
    }
}
