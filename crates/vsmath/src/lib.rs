//! # vsmath — geometry and math substrate
//!
//! Foundation crate for the `vscreen` virtual-screening stack. Provides the
//! small, allocation-free geometric types the rest of the system is built
//! on: 3-vectors, unit quaternions, rigid-body transforms, axis-aligned
//! bounding boxes, a spatial hash grid for neighbor queries, deterministic
//! seeded RNG streams, and streaming statistics.
//!
//! Everything here is deterministic and `f64`-based; the scoring kernels in
//! `vsscore` convert to `f32`-friendly layouts where profitable.
#![forbid(unsafe_code)]

pub mod aabb;
pub mod grid;
pub mod histogram;
pub mod mat3;
pub mod quat;
pub mod rng;
pub mod stats;
pub mod transform;
pub mod vec3;
pub mod wide;

pub use aabb::Aabb;
pub use grid::SpatialGrid;
pub use histogram::Histogram;
pub use mat3::Mat3;
pub use quat::Quat;
pub use rng::RngStream;
pub use stats::OnlineStats;
pub use transform::RigidTransform;
pub use vec3::Vec3;
pub use wide::F32x8;

/// Relative-tolerance float comparison used across the workspace's tests.
///
/// Returns `true` when `a` and `b` agree to within `rel` of the larger
/// magnitude, or within `rel` absolutely when both are near zero.
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= rel * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0, 1e-12));
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-8));
        assert!(!approx_eq(1.0, 1.1, 1e-8));
    }

    #[test]
    fn approx_eq_near_zero() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }
}
