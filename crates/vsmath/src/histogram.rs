//! Fixed-bin histograms.
//!
//! BINDSURF finds new binding spots "after the examination of the
//! distribution of scoring function values over the entire protein
//! surface" (§2.1); the screening pipeline uses these histograms to report
//! that distribution.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Build with bounds taken from the data (single pass over `xs` twice).
    /// Returns `None` for empty or non-finite input.
    pub fn auto(xs: &[f64], bins: usize) -> Option<Histogram> {
        if xs.is_empty() || xs.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        // Nudge the top edge so the max lands in the last bin, not overflow.
        let mut h = Histogram::new(lo, hi + (hi - lo) * 1e-9, bins);
        xs.iter().for_each(|&x| h.push(x));
        Some(h)
    }

    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let i = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// The modal bin index (ties break low).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }

    /// ASCII rendering, one row per bin, bars scaled to `width` columns.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write;
        let max = self.bins.iter().cloned().max().unwrap_or(0).max(1);
        let mut s = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            let _ = writeln!(s, "[{lo:>10.2}, {hi:>10.2}) {c:>8} {bar}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_lands_in_right_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0);
        h.push(4.999);
        h.push(5.0);
        h.push(9.999);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // hi edge is exclusive
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn auto_covers_all_data() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.37 - 5.0).collect();
        let h = Histogram::auto(&xs, 8).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn auto_rejects_bad_input() {
        assert!(Histogram::auto(&[], 4).is_none());
        assert!(Histogram::auto(&[1.0, f64::NAN], 4).is_none());
    }

    #[test]
    fn auto_constant_data() {
        let h = Histogram::auto(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::new(-2.0, 2.0, 4);
        assert_eq!(h.bin_edges(0), (-2.0, -1.0));
        assert_eq!(h.bin_edges(3), (1.0, 2.0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for x in [0.5, 1.5, 1.6, 1.7, 2.5] {
            h.push(x);
        }
        assert_eq!(h.mode_bin(), 1);
    }

    #[test]
    fn render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        h.push(0.5);
        let out = h.render(20);
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains('#'));
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 3);
    }
}
