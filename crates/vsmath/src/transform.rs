//! Rigid-body transforms (rotation followed by translation).

use crate::{Quat, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A rigid transform `p ↦ R·p + t`, the pose representation for docking
/// conformations: the ligand's local coordinates are rotated by `rotation`
/// and then shifted by `translation` into receptor space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RigidTransform {
    pub rotation: Quat,
    pub translation: Vec3,
}

impl RigidTransform {
    pub const IDENTITY: RigidTransform =
        RigidTransform { rotation: Quat::IDENTITY, translation: Vec3::ZERO };

    #[inline]
    pub const fn new(rotation: Quat, translation: Vec3) -> Self {
        RigidTransform { rotation, translation }
    }

    /// Pure translation.
    #[inline]
    pub const fn from_translation(t: Vec3) -> Self {
        RigidTransform { rotation: Quat::IDENTITY, translation: t }
    }

    /// Pure rotation about the origin.
    #[inline]
    pub const fn from_rotation(r: Quat) -> Self {
        RigidTransform { rotation: r, translation: Vec3::ZERO }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Apply to a point slice, writing results into `out`.
    ///
    /// This is the batch form the scoring kernels use to materialize a
    /// conformation's atom positions without per-atom allocation.
    pub fn apply_all(&self, points: &[Vec3], out: &mut Vec<Vec3>) {
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|&p| self.apply(p)));
    }

    /// Apply to a point slice, writing each transformed component into the
    /// structure-of-arrays destination `x`/`y`/`z` (all exactly
    /// `points.len()` long).
    ///
    /// This is the zero-allocation batch form: scoring scratch buffers own
    /// `x`/`y`/`z` and reuse them across poses, so materializing a
    /// conformation touches no allocator. Component values are bit-identical
    /// to [`RigidTransform::apply`].
    pub fn apply_all_soa(&self, points: &[Vec3], x: &mut [f64], y: &mut [f64], z: &mut [f64]) {
        assert_eq!(points.len(), x.len(), "x length mismatch");
        assert_eq!(points.len(), y.len(), "y length mismatch");
        assert_eq!(points.len(), z.len(), "z length mismatch");
        for (i, &p) in points.iter().enumerate() {
            let q = self.apply(p);
            x[i] = q.x;
            y[i] = q.y;
            z[i] = q.z;
        }
    }

    /// The inverse transform: `p ↦ R⁻¹·(p − t)`.
    pub fn inverse(&self) -> RigidTransform {
        let rinv = self.rotation.conjugate();
        RigidTransform { rotation: rinv, translation: -rinv.rotate(self.translation) }
    }

    /// Renormalize the rotation component; call after long chains of
    /// composition (e.g. many local-search steps) to cancel drift.
    pub fn renormalized(&self) -> RigidTransform {
        RigidTransform { rotation: self.rotation.renormalize(), translation: self.translation }
    }

    /// True when all components are finite.
    pub fn is_finite(&self) -> bool {
        self.rotation.is_finite() && self.translation.is_finite()
    }
}

impl Mul for RigidTransform {
    type Output = RigidTransform;
    /// Composition: `(a * b).apply(p) == a.apply(b.apply(p))`.
    fn mul(self, b: RigidTransform) -> RigidTransform {
        RigidTransform {
            rotation: self.rotation * b.rotation,
            translation: self.rotation.rotate(b.translation) + self.translation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_vec_eq(a: Vec3, b: Vec3) {
        assert!((a - b).max_abs_component() < 1e-9, "{a:?} != {b:?}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_vec_eq(RigidTransform::IDENTITY.apply(p), p);
    }

    #[test]
    fn translation_only() {
        let t = RigidTransform::from_translation(Vec3::new(1.0, 2.0, 3.0));
        assert_vec_eq(t.apply(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn rotation_then_translation_order() {
        // p=X, rotate 90° about Z → Y, then translate by X → (1,1,0).
        let tf = RigidTransform::new(Quat::from_axis_angle(Vec3::Z, FRAC_PI_2), Vec3::X);
        assert_vec_eq(tf.apply(Vec3::X), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn inverse_roundtrip() {
        let tf = RigidTransform::new(
            Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.1),
            Vec3::new(4.0, -3.0, 2.0),
        );
        let p = Vec3::new(0.3, 0.7, -1.9);
        assert_vec_eq(tf.inverse().apply(tf.apply(p)), p);
        assert_vec_eq(tf.apply(tf.inverse().apply(p)), p);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = RigidTransform::new(Quat::from_axis_angle(Vec3::X, 0.4), Vec3::new(1.0, 0.0, 0.0));
        let b = Quat::from_axis_angle(Vec3::Y, -0.9);
        let b = RigidTransform::new(b, Vec3::new(0.0, 2.0, 0.0));
        let p = Vec3::new(0.5, 0.5, 0.5);
        assert_vec_eq((a * b).apply(p), a.apply(b.apply(p)));
    }

    #[test]
    fn apply_all_matches_apply() {
        let tf = RigidTransform::new(Quat::from_axis_angle(Vec3::Z, 0.8), Vec3::new(1.0, 1.0, 1.0));
        let pts = vec![Vec3::ZERO, Vec3::X, Vec3::new(1.0, 2.0, 3.0)];
        let mut out = Vec::new();
        tf.apply_all(&pts, &mut out);
        assert_eq!(out.len(), pts.len());
        for (p, q) in pts.iter().zip(&out) {
            assert_vec_eq(tf.apply(*p), *q);
        }
    }

    #[test]
    fn apply_all_soa_matches_apply_bitwise() {
        let tf = RigidTransform::new(
            Quat::from_axis_angle(Vec3::new(0.3, -1.0, 2.0), 1.3),
            Vec3::new(-4.0, 2.5, 9.0),
        );
        let pts = vec![Vec3::ZERO, Vec3::X, Vec3::new(1.0, 2.0, 3.0), Vec3::new(-7.5, 0.25, 3.125)];
        let (mut x, mut y, mut z) = (vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]);
        tf.apply_all_soa(&pts, &mut x, &mut y, &mut z);
        for (i, &p) in pts.iter().enumerate() {
            let q = tf.apply(p);
            // Bit-identity, not approximate equality: the SoA path must be
            // indistinguishable from the scalar path.
            assert_eq!(q.x.to_bits(), x[i].to_bits());
            assert_eq!(q.y.to_bits(), y[i].to_bits());
            assert_eq!(q.z.to_bits(), z[i].to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn apply_all_soa_length_mismatch_panics() {
        let tf = RigidTransform::IDENTITY;
        let (mut x, mut y, mut z) = (vec![0.0; 1], vec![0.0; 2], vec![0.0; 1]);
        tf.apply_all_soa(&[Vec3::X], &mut x, &mut y, &mut z);
    }

    #[test]
    fn apply_all_reuses_buffer() {
        let tf = RigidTransform::IDENTITY;
        let mut out = vec![Vec3::ZERO; 100];
        tf.apply_all(&[Vec3::X], &mut out);
        assert_eq!(out, vec![Vec3::X]);
    }
}
