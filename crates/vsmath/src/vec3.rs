//! 3-component double-precision vector.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`, used for atom coordinates, translations
/// and directions throughout the stack.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `other`. The scoring hot loops use the
    /// squared form to avoid the `sqrt` until needed.
    #[inline]
    pub fn dist_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    #[inline]
    pub fn dist(self, other: Vec3) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// Returns `None` for (near-)zero vectors instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Largest absolute component, useful for tolerance checks.
    #[inline]
    pub fn max_abs_component(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// True when all components are finite (no NaN/inf).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Arithmetic mean of a point set; `Vec3::ZERO` for an empty slice.
    pub fn centroid(points: &[Vec3]) -> Vec3 {
        if points.is_empty() {
            return Vec3::ZERO;
        }
        points.iter().copied().sum::<Vec3>() / points.len() as f64
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> [f64; 3] {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::X;
        v -= Vec3::Y;
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 0.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a.dot(a), a.norm_sq());
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(approx_eq(v.norm(), 5.0, 1e-12));
        assert!(approx_eq(v.dist(Vec3::ZERO), 5.0, 1e-12));
        assert!(approx_eq(v.dist_sq(Vec3::ZERO), 25.0, 1e-12));
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Vec3::new(0.0, 0.0, 2.0);
        assert_eq!(v.normalized(), Some(Vec3::Z));
        assert_eq!(Vec3::ZERO.normalized(), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Vec3::ZERO,
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        ];
        assert_eq!(Vec3::centroid(&pts), Vec3::splat(0.5));
        assert_eq!(Vec3::centroid(&[]), Vec3::ZERO);
    }

    #[test]
    fn component_min_max_and_index() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], -3.0);
        assert_eq!(a.max_abs_component(), 5.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_conversions_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn sum_of_vectors() {
        let vs = vec![Vec3::X, Vec3::Y, Vec3::Z];
        assert_eq!(vs.into_iter().sum::<Vec3>(), Vec3::splat(1.0));
    }
}
