//! End-to-end suite over [`xlint::lint_sources`]: a golden clean
//! workspace, a golden dirty workspace whose full violation listing is
//! pinned, and one seeded mutation per rule proving each pass catches its
//! violation class. The mutations are the suite's self-test: if a pass
//! regresses into silence, the corresponding test here fails rather than
//! the workspace silently rotting.

use xlint::lint_sources;
use xlint::report::Report;

/// Crate root with the attribute rule 4 wants for an unsafe-free crate.
const LIB: &str = "//! Demo crate.\n#![forbid(unsafe_code)]\n\npub mod core;\npub mod sync;\n";

/// The reviewed sync facade (exempt from the raw-`std::sync` ban).
const SYNC: &str = "//! Reviewed sync facade.\npub use std::sync::{Mutex, MutexGuard};\n";

/// A module that satisfies all eight rules: facade import, one lock
/// order, a paired Release/Acquire atomic, and a `model_` test reaching
/// it.
const CORE: &str = "\
//! Core module.
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Core {
    a: Mutex<u32>,
    b: Mutex<u32>,
    seq: AtomicU64,
}

impl Core {
    pub fn run(&self) -> u32 {
        let g = self.a.lock();
        let h = self.b.lock();
        self.seq.store(1, Ordering::Release);
        *g + *h
    }

    pub fn observe(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_core() {
        let c = super::make();
        c.run();
        c.observe();
    }
}
";

fn lint(lib: &str, core: &str) -> Report {
    lint_sources(&[
        ("crates/det/src/lib.rs", lib),
        ("crates/det/src/sync.rs", SYNC),
        ("crates/det/src/core.rs", core),
    ])
}

fn rules(r: &Report) -> Vec<&str> {
    r.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn clean_workspace_is_clean() {
    let r = lint(LIB, CORE);
    assert!(r.violations.is_empty(), "{:#?}", r.violations);
    assert_eq!(r.files, 3);
    assert_eq!(r.coverage.len(), 1, "{:?}", r.coverage);
    assert!(r.coverage[0].module.ends_with("core.rs"), "{:?}", r.coverage);
    assert_eq!(r.coverage[0].tests, ["model_core"], "{:?}", r.coverage);
    assert_eq!(r.summary(), "3 files, 8 rules, 0 waivers, coverage 1/1 modules");
}

#[test]
fn json_report_has_greppable_coverage_scalars() {
    let json = lint(LIB, CORE).to_json();
    // ci.sh greps these scalars off their own lines; keep them there.
    assert!(json.contains("\"covered\": 1,"), "{json}");
    assert!(json.contains("\"total\": 1,"), "{json}");
    assert!(json.contains("\"violation_count\": 0,"), "{json}");
}

/// Golden dirty workspace: every pass fires at a pinned `path:line`.
#[test]
fn golden_dirty_listing() {
    let lib = "//! Demo crate.\n\npub mod core;\npub mod sync;\n";
    let core = "\
//! Core module.
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Core {
    a: Mutex<u32>,
    b: Mutex<u32>,
    seq: AtomicU64,
    tally: AtomicU64,
}

impl Core {
    pub fn run(&self) -> u32 {
        let t0 = std::time::Instant::now();
        let g = self.a.lock();
        let h = self.b.lock();
        self.seq.store(1, Ordering::Release);
        self.tally.fetch_add(1, Ordering::Relaxed);
        *g + *h
    }

    pub fn rev(&self) -> u32 {
        let h = self.b.lock();
        let g = self.a.lock();
        *g + *h
    }

    pub fn boom(&self) -> u32 {
        self.maybe().unwrap()
    }

    pub fn raw(p: *const u32) -> u32 {
        unsafe { *p }
    }
}
";
    let r = lint(lib, core);
    let got: Vec<String> = r
        .violations
        .iter()
        .map(|v| format!("{}:{}: {}", v.file.display(), v.line, v.rule))
        .collect();
    assert_eq!(
        got,
        [
            "crates/det/src/core.rs:1: model-coverage",
            "crates/det/src/core.rs:14: determinism",
            "crates/det/src/core.rs:16: lock-order",
            "crates/det/src/core.rs:17: atomic-pairing",
            "crates/det/src/core.rs:18: relaxed-ordering",
            "crates/det/src/core.rs:24: lock-order",
            "crates/det/src/core.rs:29: no-panic",
            "crates/det/src/core.rs:33: unsafe-safety",
            "crates/det/src/lib.rs:1: crate-attrs",
        ],
        "{:#?}",
        r.violations
    );
}

// --- One seeded mutation per rule -----------------------------------

#[test]
fn mutation_unsafe_without_safety_comment_is_caught() {
    let core = CORE.replace(
        "    pub fn observe(",
        "    pub fn raw(p: *const u32) -> u32 {\n        unsafe { *p }\n    }\n\n    pub fn observe(",
    );
    assert!(rules(&lint(LIB, &core)).contains(&"unsafe-safety"));
}

#[test]
fn mutation_relaxed_ordering_is_caught() {
    let core = CORE.replace("Ordering::Release", "Ordering::Relaxed");
    assert!(rules(&lint(LIB, &core)).contains(&"relaxed-ordering"));
}

#[test]
fn mutation_unwrap_in_library_code_is_caught() {
    let core = CORE.replace("*g + *h", "self.maybe().unwrap()");
    assert!(rules(&lint(LIB, &core)).contains(&"no-panic"));
}

#[test]
fn mutation_missing_crate_attr_is_caught() {
    let lib = LIB.replace("#![forbid(unsafe_code)]\n", "");
    assert!(rules(&lint(&lib, CORE)).contains(&"crate-attrs"));
}

#[test]
fn mutation_os_clock_is_caught() {
    let core = CORE.replace(
        "        let g = self.a.lock();",
        "        let t0 = std::time::Instant::now();\n        let g = self.a.lock();",
    );
    assert!(rules(&lint(LIB, &core)).contains(&"determinism"));
}

#[test]
fn mutation_cross_file_hash_iteration_is_caught() {
    // The field is declared in core.rs but iterated in other.rs: binding
    // names must pool across the deterministic crates for this to fire.
    let core = CORE.replace(
        "    seq: AtomicU64,",
        "    seq: AtomicU64,\n    pub names: std::collections::HashMap<u32, u32>,",
    );
    let other = "//! Other module.\n\
                 pub fn dump(c: &crate::core::Core) -> u32 {\n\
                 \x20   let mut n = 0;\n\
                 \x20   for (k, v) in c.names.iter() {\n\
                 \x20       n += k + v;\n\
                 \x20   }\n\
                 \x20   n\n\
                 }\n";
    let r = lint_sources(&[
        ("crates/det/src/lib.rs", LIB),
        ("crates/det/src/sync.rs", SYNC),
        ("crates/det/src/core.rs", &core),
        ("crates/det/src/other.rs", other),
    ]);
    let hit = r
        .violations
        .iter()
        .any(|v| v.rule == "determinism" && v.file.ends_with("other.rs") && v.line == 4);
    assert!(hit, "{:#?}", r.violations);
}

#[test]
fn mutation_lock_inversion_is_caught() {
    let core = CORE.replace(
        "    pub fn observe(",
        "    pub fn rev(&self) -> u32 {\n        let h = self.b.lock();\n        let g = self.a.lock();\n        *g + *h\n    }\n\n    pub fn observe(",
    );
    let r = lint(LIB, &core);
    assert!(rules(&r).contains(&"lock-order"), "{:#?}", r.violations);
}

#[test]
fn mutation_unpaired_release_is_caught() {
    // Downgrading the only Acquire load leaves the Release store with no
    // observer (the Relaxed load also trips rule 2 — both should fire).
    let core = CORE.replace("Ordering::Acquire", "Ordering::Relaxed");
    let r = lint(LIB, &core);
    let got = rules(&r);
    assert!(got.contains(&"atomic-pairing"), "{got:?}");
    assert!(got.contains(&"relaxed-ordering"), "{got:?}");
}

#[test]
fn mutation_unreached_facade_module_is_caught() {
    let core = CORE.replace("fn model_core", "fn exercise_core");
    let r = lint(LIB, &core);
    assert!(rules(&r).contains(&"model-coverage"), "{:#?}", r.violations);
    assert_eq!(r.summary(), "3 files, 8 rules, 0 waivers, coverage 0/1 modules");
}

// --- Waivers ---------------------------------------------------------

#[test]
fn determinism_waiver_suppresses_and_is_counted() {
    let core = CORE.replace(
        "        let g = self.a.lock();",
        "        // DETERMINISM: timing is reporting-only here.\n        let t0 = std::time::Instant::now();\n        let g = self.a.lock();",
    );
    let r = lint(LIB, &core);
    assert!(r.violations.is_empty(), "{:#?}", r.violations);
    assert_eq!(r.waivers, 1);
}

#[test]
fn panics_waiver_suppresses_unwrap() {
    let core = CORE.replace(
        "*g + *h",
        "// PANICS: both guards are live, the sum cannot overflow u32 here.\n        self.maybe().unwrap()",
    );
    let r = lint(LIB, &core);
    assert!(r.violations.is_empty(), "{:#?}", r.violations);
}
