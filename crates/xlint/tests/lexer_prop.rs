//! Property tests for the token-tree lexer: random concatenations of Rust
//! fragments (including pathological literals and comments) must never
//! panic the lexer, and the invariants below must hold on whatever comes
//! out. Seeding uses [`vsmath::RngStream`] so a failure replays exactly.

use vsmath::RngStream;
use xlint::lexer::{lex, TokKind};

/// Fragment pool biased toward the constructs the lexer special-cases.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "{ ",
    "} ",
    "( ",
    ") ",
    "[ ",
    "] ",
    "ident ",
    "self.done ",
    "let x = m.lock().unwrap();\n",
    "\"str \\\" lit\" ",
    "r#\"raw \" body\"# ",
    "r##\"nested \"# fence\"## ",
    "b\"bytes\" ",
    "'a' ",
    "'\\n' ",
    "'static ",
    "0x1f ",
    "1.5e3 ",
    ":: ",
    ". ",
    "; ",
    "// line comment SAFETY: yes\n",
    "/* block /* nested */ still */ ",
    "#[cfg(test)]\n",
    "Ordering::Release ",
    "\n",
];

fn random_source(rng: &mut RngStream, fragments: usize) -> String {
    let mut s = String::new();
    for _ in 0..fragments {
        s.push_str(FRAGMENTS[rng.index(FRAGMENTS.len())]);
    }
    s
}

#[test]
fn random_sources_lex_without_panic_and_pairs_are_sane() {
    for case in 0..200u64 {
        let mut rng = RngStream::derive(0x5eed, case);
        let n = 1 + rng.index(40);
        let src = random_source(&mut rng, n);
        let sf = lex(&src);
        let n_lines = sf.lines.len();
        for (i, t) in sf.tokens.iter().enumerate() {
            assert!(t.line >= 1 && t.line <= n_lines, "token line out of range in {src:?}");
            match t.kind {
                TokKind::Open => {
                    if let Some(j) = sf.matching(i) {
                        assert!(j > i, "close before open in {src:?}");
                        let close = &sf.tokens[j];
                        assert_eq!(close.kind, TokKind::Close);
                        let expect = match t.text.as_str() {
                            "(" => ")",
                            "[" => "]",
                            "{" => "}",
                            other => panic!("unexpected open {other:?}"),
                        };
                        assert_eq!(close.text, expect, "mismatched pair in {src:?}");
                        assert_eq!(sf.matching(j), Some(i), "pairing not symmetric in {src:?}");
                    }
                }
                TokKind::Close => {
                    if let Some(j) = sf.matching(i) {
                        assert!(j < i);
                        assert_eq!(sf.tokens[j].kind, TokKind::Open);
                    }
                }
                _ => {}
            }
        }
    }
}

#[test]
fn lexing_is_deterministic() {
    let mut rng = RngStream::derive(0xfeed, 0);
    for _ in 0..50 {
        let n = 1 + rng.index(60);
        let src = random_source(&mut rng, n);
        let a = lex(&src);
        let b = lex(&src);
        assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            assert_eq!((&x.kind, &x.text, x.line), (&y.kind, &y.text, y.line));
        }
        for (x, y) in a.lines.iter().zip(&b.lines) {
            assert_eq!((&x.code, &x.comment), (&y.code, &y.comment));
        }
    }
}

#[test]
fn comments_and_strings_never_leak_into_code() {
    // Whatever the surrounding soup, a line comment's text must land in
    // `comment`, never `code`, and string bodies must not surface tokens.
    let mut rng = RngStream::derive(0xc0de, 0);
    for _ in 0..100 {
        let n = rng.index(20);
        let mut src = random_source(&mut rng, n);
        // Terminate any open block comment / string the soup left dangling
        // so the probe line below starts in code context... or don't: the
        // invariant must hold either way, so probe both raw and terminated.
        src.push_str("\n*/ \"\n");
        src.push_str("zz_probe // zz_marker\n");
        let sf = lex(&src);
        for l in &sf.lines {
            assert!(!l.code.contains("zz_marker"), "comment leaked into code: {src:?}");
        }
    }
}
