//! The `lock-order` pass: flag mutex acquisition-order cycles across the
//! deterministic crates.
//!
//! Per function, the pass records which locks are acquired and the token
//! span each guard is live for (a `let`-bound guard to the end of its
//! block, a temporary to its statement's `;`). A name-resolved call graph
//! then propagates "may acquire" sets through calls, and an order edge
//! `A → B` is added whenever `B` is acquired — directly or via a call —
//! while `A`'s guard is still live. Any cycle in the resulting order
//! graph (including a self-loop from re-acquiring the same lock, or
//! recursing while holding it) is a potential deadlock and is reported.
//!
//! Resolution is deliberately over-approximate — a method call resolves
//! to every workspace function with that name — so the pass errs toward
//! false positives, which the zero-violation baseline keeps visible.
//! vscheck explores real interleavings of the modeled primitives; this
//! pass is the static mirror that covers code paths the model suites
//! don't drive.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::graph::FileFacts;
use crate::report::Violation;

/// One order edge with an example acquisition site for the report.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: PathBuf,
    line: usize,
}

/// Run the pass over the per-file facts of the deterministic crates.
/// Each entry pairs a repo-relative path with that file's facts.
pub fn check(files: &[(&Path, &FileFacts)]) -> Vec<Violation> {
    // Global function table: (name → global fn ids) plus per-file offset.
    let mut fn_offset = Vec::with_capacity(files.len());
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut total = 0usize;
    for (_, f) in files {
        fn_offset.push(total);
        for (i, d) in f.fns.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(total + i);
        }
        total += f.fns.len();
    }

    // Direct acquisitions and production call edges per global fn.
    let mut direct: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); total];
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); total];
    for (fi, (_, f)) in files.iter().enumerate() {
        for l in &f.locks {
            direct[fn_offset[fi] + l.caller].insert(l.lock.as_str());
        }
        for c in f.calls.iter().filter(|c| !c.in_test) {
            if let Some(targets) = by_name.get(c.callee.as_str()) {
                let g = fn_offset[fi] + c.caller;
                callees[g].extend(targets.iter().copied());
            }
        }
    }

    // Fixpoint: acquires*(g) = direct(g) ∪ ⋃ acquires*(callee).
    let mut acq: Vec<BTreeSet<&str>> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for g in 0..total {
            let mut add: Vec<&str> = Vec::new();
            for &c in &callees[g] {
                for l in &acq[c] {
                    if !acq[g].contains(l) {
                        add.push(l);
                    }
                }
            }
            if !add.is_empty() {
                acq[g].extend(add);
                changed = true;
            }
        }
    }

    // Order edges: within each fn, lock A held at token t covers every
    // later direct acquisition and every call made before A's scope ends.
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_set: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push_edge = |from: &str, to: &str, file: &Path, line: usize, edges: &mut Vec<Edge>| {
        if edge_set.insert((from.to_string(), to.to_string())) {
            edges.push(Edge { from: from.into(), to: to.into(), file: file.to_path_buf(), line });
        }
    };
    for (rel, f) in files {
        for a in &f.locks {
            for b in &f.locks {
                if a.caller == b.caller && b.tok > a.tok && b.tok <= a.scope_end {
                    push_edge(&a.lock, &b.lock, rel, b.line, &mut edges);
                }
            }
            for c in f.calls.iter().filter(|c| !c.in_test) {
                if c.caller != a.caller || c.tok <= a.tok || c.tok > a.scope_end {
                    continue;
                }
                if let Some(targets) = by_name.get(c.callee.as_str()) {
                    for &t in targets {
                        for l in &acq[t] {
                            push_edge(&a.lock, l, rel, a.line, &mut edges);
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: iteratively strip nodes with no outgoing or no
    // incoming edges; whatever survives participates in a cycle.
    let mut live: BTreeSet<&str> = BTreeSet::new();
    for e in &edges {
        live.insert(&e.from);
        live.insert(&e.to);
    }
    loop {
        let before = live.len();
        let has_out: BTreeSet<&str> = edges
            .iter()
            .filter(|e| live.contains(e.from.as_str()) && live.contains(e.to.as_str()))
            .map(|e| e.from.as_str())
            .collect();
        let has_in: BTreeSet<&str> = edges
            .iter()
            .filter(|e| live.contains(e.from.as_str()) && live.contains(e.to.as_str()))
            .map(|e| e.to.as_str())
            .collect();
        live.retain(|n| has_out.contains(n) && has_in.contains(n));
        if live.len() == before {
            break;
        }
    }

    let mut out = Vec::new();
    for e in &edges {
        if live.contains(e.from.as_str()) && live.contains(e.to.as_str()) {
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "lock order cycle: `{}` is acquired while `{}` is held, and the reverse \
                     order is also reachable — pick one order or narrow a guard's scope",
                    e.to, e.from
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::file_facts;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Violation> {
        let sf = lex(src);
        let skip = vec![false; sf.lines.len()];
        let facts = file_facts(0, "demo", &sf, &skip);
        check(&[(Path::new("crates/demo/src/lib.rs"), &facts)])
    }

    #[test]
    fn consistent_order_is_clean() {
        let v = run("fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn direct_inversion_is_a_cycle() {
        let v = run("fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n");
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
    }

    #[test]
    fn inversion_through_a_call_is_found() {
        let v = run("fn a(&self) { let g = self.x.lock(); self.helper(); }\n\
             fn helper(&self) { let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n");
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
    }

    #[test]
    fn sequential_scoped_locks_are_not_nested() {
        // Temporary guards die at their own statement: no a→b edge.
        let v = run("fn a(&self) { self.x.lock().push(1); self.y.lock().push(2); }\n\
             fn b(&self) { self.y.lock().push(1); self.x.lock().push(2); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reacquire_while_held_is_a_self_loop() {
        let v = run("fn a(&self) { let g = self.x.lock(); let h = self.x.lock(); }\n");
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
    }

    #[test]
    fn recursion_while_holding_is_a_self_loop() {
        let v = run("fn a(&self) { let g = self.x.lock(); self.a(); }\n");
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
    }

    #[test]
    fn inner_block_scopes_release_before_next_lock() {
        let v = run(
            "fn a(&self) {\n    let v = { let g = self.x.lock(); g.get() };\n    let h = self.y.lock();\n}\n\
             fn b(&self) { let g = self.y.lock(); drop(g); let h = self.x.lock(); }\n",
        );
        // x's guard dies inside the inner block, and `drop(g)` in `b`
        // kills y's guard before x is taken: no edges at all.
        assert!(v.is_empty(), "{v:?}");
    }
}
