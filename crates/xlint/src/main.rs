//! CLI for the xlint static-analysis suite: `xlint [--json] [root]`.
//!
//! Text mode prints `path:line: rule: message` per violation plus the
//! one-line summary; `--json` prints the full report (violations and the
//! model-coverage table) to stdout and moves the summary to stderr. In
//! both modes the JSON report is also written to `<root>/target/
//! XLINT_REPORT.json` so CI can diff coverage without re-running. Exits
//! non-zero iff violations were found.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => root = PathBuf::from(other),
        }
    }

    let report = xlint::run(&root);

    let report_path = root.join("target").join("XLINT_REPORT.json");
    let persisted = std::fs::create_dir_all(root.join("target"))
        .and_then(|()| std::fs::write(&report_path, report.to_json()))
        .is_ok();

    if json {
        print!("{}", report.to_json());
        eprintln!("xlint: {}", report.summary());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        if !report.violations.is_empty() {
            println!("xlint: {} violation(s)", report.violations.len());
        }
        println!("xlint: {}", report.summary());
        if persisted {
            println!("xlint: report written to {}", report_path.display());
        }
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
