//! `xlint` — source-level linter for repo invariants CI cannot express
//! through `rustc`/`clippy` flags alone.
//!
//! Scans `crates/*/src/**.rs` and enforces four rules:
//!
//! 1. **`unsafe-safety`** — every `unsafe` block / `unsafe impl` must carry
//!    a `// SAFETY:` comment on the same line or within the six lines
//!    above it. (`unsafe fn` *declarations* are exempt: their obligations
//!    are documented in `# Safety` doc sections, and with
//!    `deny(unsafe_op_in_unsafe_fn)` the body's unsafe operations need
//!    their own annotated blocks anyway.)
//! 2. **`relaxed-ordering`** — `Ordering::Relaxed` may only appear in the
//!    allowlisted modules that implement the lock-free hot paths (the
//!    vstrace seqlock ring and sink, the vsscore scorer counters, and the
//!    vscheck model checker, whose atomics collapse to SeqCst under the
//!    model anyway). Everywhere else Relaxed is a smell: use a stronger
//!    ordering or move the code into a reviewed module.
//! 3. **`no-panic`** — `.unwrap()` / `.expect(` are banned in library
//!    code outside tests unless waived with a `// PANICS:` comment (same
//!    line or within two lines above) explaining why the panic is either
//!    unreachable or the correct response. Binary entry points
//!    (`src/main.rs`, `src/bin/`) and `#[cfg(test)]` items are exempt.
//! 4. **`crate-attrs`** — crates whose sources contain no `unsafe` must
//!    declare `#![forbid(unsafe_code)]`; crates that do use `unsafe` must
//!    declare `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Violations print as `path:line: rule: message` (clickable in most
//! terminals/editors) and the process exits non-zero. A minimal Rust
//! lexer strips comments and string/char literals first, so tokens inside
//! strings or docs never trigger rules, while the stripped-out comment
//! text is retained per line to find `SAFETY:` / `PANICS:` waivers.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 6;
/// How many lines above a panic site a `// PANICS:` waiver may sit.
const PANICS_WINDOW: usize = 2;

/// Module paths (relative to the repo root) where `Ordering::Relaxed` is
/// permitted. Keep this list short and reviewed: each entry is a lock-free
/// hot path whose orderings are argued in its module docs.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/vstrace/src/ring.rs",
    "crates/vstrace/src/sink.rs",
    "crates/vsscore/src/scorer.rs",
    "crates/vscheck/", // model checker: orderings collapse to SeqCst under the model
    // Work-stealing chunk deque: the packed range word is the entire
    // shared state (no payload published through it); orderings argued in
    // the module docs and model-checked under vscheck-model.
    "crates/vsched/src/deque.rs",
];

#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// One source line after lexing: `code` has comments and literal contents
/// blanked out (literal delimiters survive, contents become spaces);
/// `comment` holds the comment text that was removed from this line.
struct LexedLine {
    code: String,
    comment: String,
}

/// Lexer state carried across lines.
enum Mode {
    Normal,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
}

/// Strip comments and string/char literals from Rust source, preserving
/// line structure. Handles line + nested block comments, plain and raw
/// (`r#".."#`) strings with `b`/`c` prefixes, escapes, char literals, and
/// lifetimes (`'a` is not a char literal).
fn lex(src: &str) -> Vec<LexedLine> {
    let mut lines = Vec::new();
    let mut mode = Mode::Normal;
    for raw in src.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::BlockComment { depth } => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str("*/");
                        i += 2;
                        mode = if depth == 1 {
                            Mode::Normal
                        } else {
                            Mode::BlockComment { depth: depth - 1 }
                        };
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment { depth: depth + 1 };
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped char
                    } else if chars[i] == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Normal;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr { hashes } => {
                    if chars[i] == '"'
                        && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                    {
                        code.push('"');
                        i += 1 + hashes as usize;
                        mode = Mode::Normal;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&chars[i..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment { depth: 1 };
                    } else if matches!(c, 'r' | 'b' | 'c')
                        && !prev_is_ident(&code)
                        && is_raw_string_start(&chars, i)
                    {
                        // consume prefix letters, then hashes, up to the quote
                        let mut j = i;
                        while matches!(chars[j], 'r' | 'b' | 'c') {
                            code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('"');
                        i = j + 1;
                        mode = Mode::RawStr { hashes };
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&code) {
                        code.push_str("b\"");
                        i += 2;
                        mode = Mode::Str;
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Str;
                    } else if c == '\'' {
                        // char literal vs lifetime
                        if chars.get(i + 1) == Some(&'\\') {
                            // escaped char literal: skip to closing quote
                            code.push('\'');
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            code.push('\'');
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            // lifetime — keep as-is
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(LexedLine { code, comment });
    }
    lines
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r"  r#"  br"  br#"  cr"  (prefix letters, one of them `r`, then
    // optional #s, then the opening quote)
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    if !chars[i..j].contains(&'r') {
        return false;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Position of `needle` in `hay` as a standalone word (no identifier
/// characters adjacent on either side), if any.
fn has_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let ok_after =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Per-line flags for `#[cfg(test)]` scope tracking: true ⇒ the line is
/// inside a test-only item and exempt from the `no-panic` rule.
fn test_scope(lines: &[LexedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // brace depth at which the current test item's body started
    let mut test_until: Option<i64> = None;
    let mut pending_attr = false; // saw #[cfg(test ...)], item body not yet open
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if pending_attr || test_until.is_some() {
            in_test[idx] = true;
        }
        if code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test")
        {
            pending_attr = true;
            in_test[idx] = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if pending_attr && test_until.is_none() {
            if opens > 0 {
                test_until = Some(depth);
                pending_attr = false;
            } else if code.trim_end().ends_with(';') {
                // braceless item (`#[cfg(test)] use ...;`) — ends here
                pending_attr = false;
            }
        }
        depth += opens - closes;
        if let Some(base) = test_until {
            if depth <= base {
                test_until = None;
            }
        }
    }
    in_test
}

fn comment_window_has(lines: &[LexedLine], at: usize, window: usize, marker: &str) -> bool {
    let lo = at.saturating_sub(window);
    lines[lo..=at].iter().any(|l| l.comment.contains(marker))
}

/// Lint one file. `rel` is the repo-relative path used for allowlists and
/// reporting; returns all violations found.
fn scan_file(rel: &Path, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines = lex(src);
    let in_test = test_scope(&lines);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let relaxed_ok = RELAXED_ALLOWLIST.iter().any(|p| {
        if p.ends_with('/') {
            rel_str.starts_with(p)
        } else {
            rel_str == *p
        }
    });
    let is_bin = rel_str.contains("/src/bin/") || rel_str.ends_with("/src/main.rs");

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;

        // Rule 1: unsafe needs SAFETY. `unsafe fn` declarations are exempt
        // (deny(unsafe_op_in_unsafe_fn) pushes the obligation onto inner
        // blocks); `unsafe impl` and `unsafe {` are not.
        if let Some(pos) = has_word(code, "unsafe") {
            let after = code[pos + "unsafe".len()..].trim_start();
            let is_fn_decl = after.starts_with("fn ") || after.starts_with("extern ");
            if !is_fn_decl && !comment_window_has(&lines, idx, SAFETY_WINDOW, "SAFETY:") {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "unsafe-safety",
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines"
                    ),
                });
            }
        }

        // Rule 2: Relaxed only in allowlisted lock-free modules.
        if !relaxed_ok && code.contains("Ordering::Relaxed") {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "relaxed-ordering",
                message: "`Ordering::Relaxed` outside allowlisted lock-free modules \
                          (see RELAXED_ALLOWLIST in xlint)"
                    .into(),
            });
        }

        // Rule 3: no unwrap/expect in library code outside tests without a
        // PANICS waiver. `.expect(` counts only when the argument is a
        // string literal, so user-defined `Result`-returning methods that
        // happen to be named `expect` (e.g. a parser's `expect(b'{')?`)
        // are not misflagged.
        if !is_bin && !in_test[idx] {
            for pat in [".unwrap()", ".expect("] {
                let hit = if pat == ".unwrap()" {
                    code.contains(pat)
                } else {
                    code.match_indices(pat).any(|(pos, _)| {
                        let arg = code[pos + pat.len()..].trim_start();
                        arg.starts_with('"') || arg.starts_with("r\"")
                    })
                };
                if hit && !comment_window_has(&lines, idx, PANICS_WINDOW, "PANICS:") {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "no-panic",
                        message: format!(
                            "`{pat}` in library code without a `// PANICS:` waiver within \
                             {PANICS_WINDOW} lines"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Rule 4: crate-level attribute coverage. `files` are (rel path, source)
/// pairs for one crate's `src/`; the crate root is `src/lib.rs` (or
/// `src/main.rs` for pure binaries).
fn check_crate_attrs(crate_rel: &Path, files: &[(PathBuf, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let uses_unsafe =
        files.iter().any(|(_, src)| lex(src).iter().any(|l| has_word(&l.code, "unsafe").is_some()));
    let root = files
        .iter()
        .find(|(p, _)| p.ends_with("src/lib.rs"))
        .or_else(|| files.iter().find(|(p, _)| p.ends_with("src/main.rs")));
    let Some((root_path, root_src)) = root else { return out };
    let root_code: String = lex(root_src).iter().map(|l| l.code.clone() + "\n").collect();
    let want =
        if uses_unsafe { "#![deny(unsafe_op_in_unsafe_fn)]" } else { "#![forbid(unsafe_code)]" };
    if !root_code.contains(want) {
        out.push(Violation {
            file: root_path.clone(),
            line: 1,
            rule: "crate-attrs",
            message: format!(
                "crate `{}` {} `unsafe`: missing `{want}`",
                crate_rel.file_name().unwrap_or_default().to_string_lossy(),
                if uses_unsafe { "uses" } else { "has no" },
            ),
        });
    }
    out
}

fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn run(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        for abs in rust_files_under(&src_dir) {
            let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
            match std::fs::read_to_string(&abs) {
                Ok(src) => files.push((rel, src)),
                Err(e) => violations.push(Violation {
                    file: rel,
                    line: 1,
                    rule: "io",
                    message: format!("unreadable: {e}"),
                }),
            }
        }
        for (rel, src) in &files {
            violations.extend(scan_file(rel, src));
        }
        let crate_rel = crate_dir.strip_prefix(root).unwrap_or(&crate_dir).to_path_buf();
        violations.extend(check_crate_attrs(&crate_rel, &files));
    }
    violations
}

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let violations = run(&root);
    if violations.is_empty() {
        println!("xlint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("xlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        scan_file(Path::new("crates/demo/src/lib.rs"), src)
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = lex("let s = \"unsafe .unwrap()\"; // Ordering::Relaxed");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[0].comment.contains("Relaxed"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let src = "let r = r#\"unsafe { x.unwrap() }\"#;\n/* outer /* unsafe */ still comment */ let x = 1;";
        let lines = lex(src);
        assert!(!lines[0].code.contains("unwrap"), "{}", lines[0].code);
        assert!(!lines[1].code.contains("unsafe"), "{}", lines[1].code);
        assert!(lines[1].code.contains("let x = 1;"), "{}", lines[1].code);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = lex("fn f<'a>(c: char) -> bool { c == '\"' || c == '\\'' }");
        // the quote char literal must not open a string
        assert!(lines[0].code.contains("fn f<'a>"), "{}", lines[0].code);
        assert!(!lines[0].code.contains("||") || lines[0].code.contains("||"));
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let v = lint("fn f() {\n    unsafe { noop() }\n}\n");
        assert!(v.iter().any(|v| v.rule == "unsafe-safety" && v.line == 2), "{v:?}");
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let v = lint("fn f() {\n    // SAFETY: proven above.\n    unsafe { noop() }\n}\n");
        assert!(v.iter().all(|v| v.rule != "unsafe-safety"), "{v:?}");
    }

    #[test]
    fn unsafe_fn_declaration_exempt_but_impl_not() {
        let v = lint("unsafe fn raw() {}\nunsafe impl Send for X {}\n");
        assert!(v.iter().all(|v| v.line != 1), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "unsafe-safety" && v.line == 2), "{v:?}");
    }

    #[test]
    fn unsafe_inside_string_or_ident_ignored() {
        let v = lint("fn f() { let s = \"unsafe block\"; forbid(unsafe_code); }\n");
        assert!(v.iter().all(|v| v.rule != "unsafe-safety"), "{v:?}");
    }

    #[test]
    fn relaxed_flagged_outside_allowlist() {
        let v = lint("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n");
        assert!(v.iter().any(|v| v.rule == "relaxed-ordering"), "{v:?}");
    }

    #[test]
    fn relaxed_allowed_in_allowlisted_file_and_prefix() {
        for path in ["crates/vstrace/src/ring.rs", "crates/vscheck/src/sched.rs"] {
            let v = scan_file(Path::new(path), "fn f(a: &A) { a.load(Ordering::Relaxed); }\n");
            assert!(v.iter().all(|v| v.rule != "relaxed-ordering"), "{path}: {v:?}");
        }
    }

    #[test]
    fn unwrap_without_waiver_flagged() {
        let v = lint("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn unwrap_with_panics_waiver_passes() {
        let v = lint(
            "fn f(x: Option<u32>) -> u32 {\n    // PANICS: x is Some by construction.\n    x.unwrap()\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn expect_in_cfg_test_mod_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(x: Option<u32>) -> u32 { x.expect(\"set\") }\n}\nfn lib(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src);
        assert!(v.iter().all(|v| v.line != 3), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "no-panic" && v.line == 5), "{v:?}");
    }

    #[test]
    fn cfg_all_test_feature_mod_exempt() {
        let src = "#[cfg(all(test, feature = \"m\"))]\nmod model {\n    fn h(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let v = lint(src);
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn user_defined_expect_method_not_flagged() {
        // A parser's own `expect(byte)` helper is not Option/Result::expect.
        let v = lint("fn object(&mut self) -> Result<V, String> { self.expect(b'{')?; todo!() }\n");
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn bin_sources_exempt_from_no_panic() {
        let v = scan_file(
            Path::new("crates/demo/src/bin/tool.rs"),
            "fn main() { std::fs::read(\"x\").unwrap(); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn crate_attr_forbid_required_without_unsafe() {
        let files = vec![(PathBuf::from("crates/demo/src/lib.rs"), "fn f() {}\n".to_string())];
        let v = check_crate_attrs(Path::new("crates/demo"), &files);
        assert!(v.iter().any(|v| v.rule == "crate-attrs" && v.message.contains("forbid")), "{v:?}");
        let files = vec![(
            PathBuf::from("crates/demo/src/lib.rs"),
            "#![forbid(unsafe_code)]\nfn f() {}\n".to_string(),
        )];
        assert!(check_crate_attrs(Path::new("crates/demo"), &files).is_empty());
    }

    #[test]
    fn crate_attr_deny_required_with_unsafe() {
        let files = vec![(
            PathBuf::from("crates/demo/src/lib.rs"),
            "// SAFETY: demo\nunsafe impl Send for X {}\n".to_string(),
        )];
        let v = check_crate_attrs(Path::new("crates/demo"), &files);
        assert!(
            v.iter().any(|v| v.rule == "crate-attrs" && v.message.contains("unsafe_op")),
            "{v:?}"
        );
    }

    #[test]
    fn forbid_attr_in_comment_does_not_count() {
        let files = vec![(
            PathBuf::from("crates/demo/src/lib.rs"),
            "// #![forbid(unsafe_code)]\nfn f() {}\n".to_string(),
        )];
        let v = check_crate_attrs(Path::new("crates/demo"), &files);
        assert!(v.iter().any(|v| v.rule == "crate-attrs"), "{v:?}");
    }
}
