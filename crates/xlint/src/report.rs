//! Violations, the machine-readable report, and its JSON encoding.
//!
//! The JSON is hand-rolled (no serde dependency in the linter) and stable:
//! CI redirects `xlint --json` into `target/XLINT_REPORT.json` and greps
//! scalar fields, so every scalar is emitted on its own line.

use std::fmt;
use std::path::PathBuf;

#[derive(Debug, Clone)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Model-check coverage of one sync-facade-using module.
#[derive(Debug, Clone)]
pub struct ModuleCoverage {
    /// Repo-relative module path.
    pub module: String,
    /// The facade it imports (e.g. `vsscore::sync`).
    pub facade: String,
    /// `model_*` tests that reach a function defined in this module.
    pub tests: Vec<String>,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    pub files: usize,
    pub rules: usize,
    /// `SAFETY:`/`PANICS:`/`DETERMINISM:` waiver comments seen in scanned
    /// files — tracked so bench trajectory tooling can watch waiver creep.
    pub waivers: usize,
    pub violations: Vec<Violation>,
    pub coverage: Vec<ModuleCoverage>,
}

impl Report {
    pub fn coverage_covered(&self) -> usize {
        self.coverage.iter().filter(|m| !m.tests.is_empty()).count()
    }

    /// The one-line summary: `N files, M rules, K waivers, coverage X/Y
    /// modules`.
    pub fn summary(&self) -> String {
        format!(
            "{} files, {} rules, {} waivers, coverage {}/{} modules",
            self.files,
            self.rules,
            self.waivers,
            self.coverage_covered(),
            self.coverage.len()
        )
    }

    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"files\": {},\n", self.files));
        s.push_str(&format!("  \"rules\": {},\n", self.rules));
        s.push_str(&format!("  \"waivers\": {},\n", self.waivers));
        s.push_str(&format!("  \"violation_count\": {},\n", self.violations.len()));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.file.to_string_lossy().replace('\\', "/")),
                v.line,
                json_str(v.rule),
                json_str(&v.message)
            ));
        }
        s.push_str(if self.violations.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"coverage\": {\n");
        s.push_str(&format!("    \"covered\": {},\n", self.coverage_covered()));
        s.push_str(&format!("    \"total\": {},\n", self.coverage.len()));
        s.push_str("    \"modules\": [");
        for (i, m) in self.coverage.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let tests: Vec<String> = m.tests.iter().map(|t| json_str(t)).collect();
            s.push_str(&format!(
                "\n      {{\"module\": {}, \"facade\": {}, \"tests\": [{}]}}",
                json_str(&m.module),
                json_str(&m.facade),
                tests.join(", ")
            ));
        }
        s.push_str(if self.coverage.is_empty() { "]\n" } else { "\n    ]\n" });
        s.push_str("  },\n");
        s.push_str(&format!("  \"summary\": {}\n", json_str(&self.summary())));
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string encoder (control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_format() {
        let mut r = Report { files: 3, rules: 8, waivers: 2, ..Default::default() };
        r.coverage.push(ModuleCoverage {
            module: "crates/a/src/x.rs".into(),
            facade: "a::sync".into(),
            tests: vec!["model_x".into()],
        });
        r.coverage.push(ModuleCoverage {
            module: "crates/b/src/y.rs".into(),
            facade: "b::sync".into(),
            tests: vec![],
        });
        assert_eq!(r.summary(), "3 files, 8 rules, 2 waivers, coverage 1/2 modules");
    }

    #[test]
    fn json_escapes_and_scalar_lines() {
        let r = Report {
            files: 1,
            rules: 8,
            waivers: 0,
            violations: vec![Violation {
                file: PathBuf::from("a\\b.rs"),
                line: 7,
                rule: "no-panic",
                message: "has \"quotes\" and\nnewline".into(),
            }],
            coverage: vec![],
        };
        let j = r.to_json();
        assert!(j.contains("\"violation_count\": 1,\n"), "{j}");
        assert!(j.contains("\\\"quotes\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("a/b.rs"), "backslash paths normalized: {j}");
        assert!(j.contains("\"covered\": 0,\n"), "{j}");
    }
}
