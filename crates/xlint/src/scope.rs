//! Attribute-driven scope tracking and waiver-comment lookup.
//!
//! The `cfg` awareness lives here: items under `#[cfg(test)]` (including
//! `all(test, …)`/`any(test, …)` combinations and `#[test]` functions) are
//! resolved from the token tree — attribute group → following item extent —
//! rather than by counting braces in raw text, so strings, nested items,
//! and multi-line attributes cannot desynchronize the scope.

use crate::lexer::{LexedLine, SourceFile, TokKind};

/// Waiver comment markers and the lookback window (in lines) each allows.
pub const SAFETY_WINDOW: usize = 6;
pub const PANICS_WINDOW: usize = 2;
pub const DETERMINISM_WINDOW: usize = 3;

/// Per-line flags: true ⇒ the line is inside a test-only item (under a
/// `#[cfg(test)]`-style attribute or a `#[test]` function) and gets the
/// `test` policy class regardless of the file's class.
pub fn test_scope(sf: &SourceFile) -> Vec<bool> {
    let mut flags = vec![false; sf.lines.len()];
    let toks = &sf.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_attr_start = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        let Some(close) = sf.matching(i + 1) else {
            i += 2;
            continue;
        };
        if attr_is_test(sf, i + 2, close) {
            let start_line = toks[i].line;
            let end_line = item_extent_end(sf, close + 1).unwrap_or(start_line);
            for flag in flags
                .iter_mut()
                .take(end_line.min(sf.lines.len()))
                .skip(start_line.saturating_sub(1))
            {
                *flag = true;
            }
            // Keep scanning *inside* the marked item: nothing further to
            // find there (it is already marked), but an unrelated sibling
            // attr may start right after `close`.
        }
        i = close + 1;
    }
    flags
}

/// Does the attribute body `tokens[start..close]` gate on `test`?
/// Matches `test` (the `#[test]` attribute) and `cfg(… test …)` where the
/// `test` ident is not inside a `not(…)` group.
fn attr_is_test(sf: &SourceFile, start: usize, close: usize) -> bool {
    let toks = &sf.tokens;
    if close == start + 1 && toks[start].is_ident("test") {
        return true;
    }
    if !toks.get(start).is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    let mut j = start + 1;
    let mut skip_until = 0usize; // end of the innermost not(…) group seen
    while j < close {
        let t = &toks[j];
        if t.is_ident("not") && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Open) {
            if let Some(not_close) = sf.matching(j + 1) {
                skip_until = skip_until.max(not_close);
            }
        }
        if t.is_ident("test") && j > skip_until {
            return true;
        }
        j += 1;
    }
    false
}

/// Line on which the item starting at token `start` ends: the matching `}`
/// of its first top-level brace group, or the `;` that terminates a
/// braceless item. Leading attributes on the item are skipped.
fn item_extent_end(sf: &SourceFile, start: usize) -> Option<usize> {
    let toks = &sf.tokens;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        // Skip stacked attributes.
        if t.is_punct('#')
            && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Open && n.text == "[")
        {
            j = sf.matching(j + 1).map_or(j + 2, |c| c + 1);
            continue;
        }
        match t.kind {
            TokKind::Open if t.text == "{" => {
                return sf.matching(j).map(|c| toks[c].line);
            }
            TokKind::Open => {
                // Parenthesized/array group in the signature — hop over it.
                j = sf.matching(j).map_or(j + 1, |c| c + 1);
                continue;
            }
            TokKind::Punct if t.text == ";" => return Some(t.line),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Is `marker` present in a comment on line `at` (0-based) or within
/// `window` lines above it?
pub fn comment_window_has(lines: &[LexedLine], at: usize, window: usize, marker: &str) -> bool {
    let lo = at.saturating_sub(window);
    let hi = at.min(lines.len().saturating_sub(1));
    lines[lo..=hi].iter().any(|l| l.comment.contains(marker))
}

/// Count waiver comments (`SAFETY:`, `PANICS:`, `DETERMINISM:`) in a file —
/// the `K waivers` figure the summary line tracks across PRs.
pub fn count_waivers(lines: &[LexedLine]) -> usize {
    lines
        .iter()
        .map(|l| {
            ["SAFETY:", "PANICS:", "DETERMINISM:"].iter().filter(|m| l.comment.contains(*m)).count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn flags(src: &str) -> Vec<bool> {
        test_scope(&lex(src))
    }

    #[test]
    fn cfg_test_mod_marks_its_body() {
        let f =
            flags("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n");
        assert_eq!(f, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_feature_marks_body() {
        let f = flags("#[cfg(all(test, feature = \"m\"))]\nmod model {\n    fn h() {}\n}\n");
        assert_eq!(&f[..3], &[true, true, true]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let f = flags("#[cfg(not(test))]\nfn prod() {\n    work();\n}\n");
        assert!(!f[2], "{f:?}");
    }

    #[test]
    fn bare_test_attribute_marks_fn() {
        let f = flags("#[test]\nfn checks() {\n    assert!(true);\n}\nfn lib() {}\n");
        assert_eq!(&f[..5], &[true, true, true, true, false]);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let f = flags("#[cfg(test)]\nuse crate::helper;\nfn lib() {}\n");
        assert_eq!(&f[..3], &[true, true, false]);
    }

    #[test]
    fn stacked_attributes_still_find_the_body() {
        let f = flags("#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    fn x() {}\n}\nfn y() {}\n");
        assert_eq!(&f[..6], &[true, true, true, true, true, false]);
    }

    #[test]
    fn string_braces_do_not_desync_scope() {
        let src = "#[cfg(test)]\nmod t {\n    const S: &str = \"}}}{{\";\n    fn x() {}\n}\nfn lib() {}\n";
        let f = flags(src);
        assert_eq!(&f[..6], &[true, true, true, true, true, false]);
    }

    #[test]
    fn waiver_counting() {
        let sf = lex("// SAFETY: a\nlet x = 1; // PANICS: b\n// DETERMINISM: c\n// plain\n");
        assert_eq!(count_waivers(&sf.lines), 3);
    }
}
