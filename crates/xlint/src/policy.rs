//! Policy classes and workspace file discovery.
//!
//! Every scanned file belongs to exactly one policy class, which decides
//! the rule set applied to it (DESIGN.md §14):
//!
//! - **`deterministic-lib`** — library crates whose outputs feed the
//!   bit-identity contracts (goldens, per-seed `CampaignReport`s,
//!   lockstep-vs-pipelined equality). All eight rules apply, including the
//!   determinism pass (no wall clock, no hash-order iteration, no raw
//!   `std::thread`/`std::sync` outside the reviewed sync facades).
//! - **`host-tool`** — binaries and harnesses that *measure* the system
//!   (bench, the model checker, this linter). Wall clocks and hash maps
//!   are their job; the determinism pass skips them, the safety rules
//!   still apply.
//! - **`test`** — integration tests and examples. Crate-attr and SAFETY
//!   rules apply; `no-panic` is exempt (asserting via unwrap is idiomatic
//!   test code), as is the determinism pass.

use std::path::{Path, PathBuf};

/// Per-file rule policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    DeterministicLib,
    HostTool,
    Test,
}

impl Class {
    pub fn as_str(self) -> &'static str {
        match self {
            Class::DeterministicLib => "deterministic-lib",
            Class::HostTool => "host-tool",
            Class::Test => "test",
        }
    }
}

/// Crates whose `src/` is host-tool class: they observe the system rather
/// than compute results, so wall clocks and hash iteration are their job.
/// Everything else under `crates/` is deterministic-lib.
const HOST_TOOL_CRATES: &[&str] = &["xlint", "vscheck", "bench"];

/// One file queued for analysis.
#[derive(Debug)]
pub struct FileEntry {
    /// Repo-relative path with `/` separators (used in reports/allowlists).
    pub rel: PathBuf,
    pub src: String,
    /// Owning crate name (directory name under `crates/`, or `examples`/
    /// `tests` for the workspace-level members).
    pub crate_name: String,
    pub class: Class,
    /// True for `src/sync.rs` facade modules: the reviewed home for raw
    /// `std::sync`/`std::thread` in deterministic crates.
    pub is_facade: bool,
    /// True for binary roots (`src/main.rs`, `src/bin/*`): exempt from
    /// `no-panic`.
    pub is_bin: bool,
}

fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn push_root(
    out: &mut Vec<FileEntry>,
    io_errors: &mut Vec<(PathBuf, String)>,
    repo: &Path,
    dir: &Path,
    crate_name: &str,
    class: Class,
) {
    for abs in rust_files_under(dir) {
        let rel = abs.strip_prefix(repo).unwrap_or(&abs).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(&abs) {
            Ok(src) => out.push(FileEntry {
                is_facade: rel_str.ends_with("/src/sync.rs"),
                is_bin: rel_str.contains("/src/bin/") || rel_str.ends_with("/src/main.rs"),
                rel,
                src,
                crate_name: crate_name.to_string(),
                class,
            }),
            Err(e) => io_errors.push((rel, e.to_string())),
        }
    }
}

/// Discover every scan root in the workspace. Returns the file list plus
/// unreadable paths (reported as `io` violations by the caller).
///
/// Roots and their classes:
/// - `crates/<name>/src` → the crate's class (host-tool for
///   [`HOST_TOOL_CRATES`], deterministic-lib otherwise);
/// - `crates/<name>/tests` → test;
/// - `examples/` (both `src/` and the example binaries) → test;
/// - `tests/` (the workspace acceptance-test member) → test.
///
/// `shims/` is deliberately unscanned: it vendors minimal stand-ins for
/// external crates and follows upstream idiom, not repo policy.
pub fn collect_files(repo: &Path) -> (Vec<FileEntry>, Vec<(PathBuf, String)>) {
    let mut files = Vec::new();
    let mut io_errors = Vec::new();
    let crates_dir = repo.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().unwrap_or_default().to_string_lossy().to_string();
        let class = if HOST_TOOL_CRATES.contains(&name.as_str()) {
            Class::HostTool
        } else {
            Class::DeterministicLib
        };
        push_root(&mut files, &mut io_errors, repo, &dir.join("src"), &name, class);
        push_root(&mut files, &mut io_errors, repo, &dir.join("tests"), &name, Class::Test);
    }
    for member in ["examples", "tests"] {
        let dir = repo.join(member);
        if dir.is_dir() {
            push_root(&mut files, &mut io_errors, repo, &dir, member, Class::Test);
        }
    }
    (files, io_errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_match_design_doc() {
        assert_eq!(Class::DeterministicLib.as_str(), "deterministic-lib");
        assert_eq!(Class::HostTool.as_str(), "host-tool");
        assert_eq!(Class::Test.as_str(), "test");
    }

    #[test]
    fn host_tool_set_is_the_harness_crates() {
        for c in ["xlint", "vscheck", "bench"] {
            assert!(HOST_TOOL_CRATES.contains(&c));
        }
        assert!(!HOST_TOOL_CRATES.contains(&"vsscore"));
    }
}
