//! The `model-coverage` pass: every production module that imports a sync
//! facade (`crate::sync` / `vscheck::sync`) holds concurrency logic the
//! model checker is supposed to exercise, so each must be reachable from
//! at least one `model_*` test somewhere in the workspace.
//!
//! Reachability is breadth-first over the name-resolved call graph
//! starting at every function whose name starts with `model_`; a module
//! is covered when the walk reaches any function defined in it (or when
//! it defines a model test itself). The resulting table is part of the
//! report — CI persists it to `target/XLINT_REPORT.json` and refuses to
//! let the covered count shrink.

use std::collections::BTreeMap;

use crate::graph::FileFacts;
use crate::policy::{Class, FileEntry};
use crate::report::{ModuleCoverage, Violation};

/// Compute the coverage table and the violations for uncovered modules.
/// `facts[i]` describes `entries[i]`.
pub fn check(entries: &[FileEntry], facts: &[FileFacts]) -> (Vec<ModuleCoverage>, Vec<Violation>) {
    // Global fn table + name index (same shape as the lock-order pass).
    let mut fn_offset = Vec::with_capacity(facts.len());
    let mut fn_file = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut total = 0usize;
    for (fi, f) in facts.iter().enumerate() {
        fn_offset.push(total);
        for (i, d) in f.fns.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(total + i);
            fn_file.push(fi);
        }
        total += f.fns.len();
    }
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (fi, f) in facts.iter().enumerate() {
        for c in &f.calls {
            if let Some(targets) = by_name.get(c.callee.as_str()) {
                callees[fn_offset[fi] + c.caller].extend(targets.iter().copied());
            }
        }
    }

    // BFS from each model_ test; remember which tests reach which file.
    let mut reached_by: Vec<Vec<String>> = vec![Vec::new(); entries.len()];
    for (fi, f) in facts.iter().enumerate() {
        for (i, d) in f.fns.iter().enumerate() {
            if !d.name.starts_with("model_") {
                continue;
            }
            let mut seen = vec![false; total];
            let mut queue = vec![fn_offset[fi] + i];
            seen[fn_offset[fi] + i] = true;
            while let Some(g) = queue.pop() {
                let file = fn_file[g];
                if !reached_by[file].contains(&d.name) {
                    reached_by[file].push(d.name.clone());
                }
                for &c in &callees[g] {
                    if !seen[c] {
                        seen[c] = true;
                        queue.push(c);
                    }
                }
            }
        }
    }

    let mut coverage = Vec::new();
    let mut violations = Vec::new();
    for (fi, e) in entries.iter().enumerate() {
        // Facade modules themselves are the seam, not a subject; only the
        // deterministic crates owe model coverage (tests and harnesses
        // import facades to *drive* the subjects, not to be driven).
        if facts[fi].facade_imports.is_empty() || e.is_facade || e.class != Class::DeterministicLib
        {
            continue;
        }
        let module = e.rel.to_string_lossy().replace('\\', "/");
        let mut tests = reached_by[fi].clone();
        tests.sort();
        tests.truncate(8); // keep the report readable
        if tests.is_empty() {
            violations.push(Violation {
                file: e.rel.clone(),
                line: 1,
                rule: "model-coverage",
                message: format!(
                    "module imports `{}` but no `model_*` test reaches it: add a model suite \
                     or drive it from an existing one",
                    facts[fi].facade_imports.join("`, `")
                ),
            });
        }
        coverage.push(ModuleCoverage {
            module,
            facade: facts[fi].facade_imports.join(", "),
            tests,
        });
    }
    (coverage, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::file_facts;
    use crate::lexer::lex;
    use crate::policy::Class;
    use crate::scope::test_scope;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> (Vec<ModuleCoverage>, Vec<Violation>) {
        let mut entries = Vec::new();
        let mut facts = Vec::new();
        for (i, (rel, src)) in files.iter().enumerate() {
            let sf = lex(src);
            let in_test = test_scope(&sf);
            facts.push(file_facts(i, "demo", &sf, &in_test));
            entries.push(FileEntry {
                rel: PathBuf::from(rel),
                src: src.to_string(),
                crate_name: "demo".into(),
                class: Class::DeterministicLib,
                is_facade: rel.ends_with("/src/sync.rs"),
                is_bin: false,
            });
        }
        check(&entries, &facts)
    }

    #[test]
    fn module_with_local_model_test_is_covered() {
        let (cov, v) = run(&[(
            "crates/demo/src/queue.rs",
            "use crate::sync::Mutex;\nfn push(&self) {}\n#[cfg(all(test, feature = \"vscheck-model\"))]\nmod model {\n    fn model_queue() { push(); }\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(cov.len(), 1);
        assert_eq!(cov[0].tests, ["model_queue"]);
    }

    #[test]
    fn module_reached_cross_file_is_covered() {
        let (cov, v) = run(&[
            (
                "crates/demo/src/runtime.rs",
                "use crate::sync::Condvar;\npub fn tick(&self) { self.step(); }\npub fn step(&self) {}\n",
            ),
            (
                "crates/demo/src/executor.rs",
                "pub fn drive(&self) { tick(); }\n#[cfg(test)]\nmod model {\n    fn model_exec() { drive(); }\n}\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
        let runtime = cov.iter().find(|m| m.module.ends_with("runtime.rs")).unwrap();
        assert_eq!(runtime.tests, ["model_exec"]);
    }

    #[test]
    fn uncovered_facade_user_flagged() {
        let (cov, v) =
            run(&[("crates/demo/src/orphan.rs", "use crate::sync::Mutex;\nfn lonely(&self) {}\n")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "model-coverage");
        assert!(cov[0].tests.is_empty());
    }

    #[test]
    fn facade_itself_and_non_importers_not_in_table() {
        let (cov, v) = run(&[
            ("crates/demo/src/sync.rs", "pub use std::sync::Mutex;\n"),
            ("crates/demo/src/math.rs", "pub fn add(a: u32, b: u32) -> u32 { a + b }\n"),
        ]);
        assert!(cov.is_empty(), "{cov:?}");
        assert!(v.is_empty(), "{v:?}");
    }
}
