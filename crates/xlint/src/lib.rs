//! `xlint` — workspace static-analysis suite for repo invariants that
//! `rustc`/`clippy` flags cannot express (DESIGN.md §14).
//!
//! A token-tree lexer ([`lexer`]) feeds eight rules, gated per file by a
//! policy class ([`policy`]):
//!
//! | rule | deterministic-lib | host-tool | test |
//! |---------------------|---|---|---|
//! | `unsafe-safety`     | ✓ | ✓ | ✓ |
//! | `relaxed-ordering`  | ✓ | ✓ | ✓ |
//! | `no-panic`          | ✓ | ✓ | — |
//! | `crate-attrs`       | ✓ | ✓ | ✓ |
//! | `determinism`       | ✓ | — | — |
//! | `lock-order`        | ✓ | — | — |
//! | `atomic-pairing`    | ✓ | — | — |
//! | `model-coverage`    | ✓ | — | — |
//!
//! Violations print as `path:line: rule: message`; `--json` emits the full
//! [`report::Report`] including the model-coverage table that CI persists
//! to `target/XLINT_REPORT.json` and guards against regression.

#![forbid(unsafe_code)]

pub mod atomics;
pub mod basic;
pub mod coverage;
pub mod determinism;
pub mod graph;
pub mod lexer;
pub mod lockorder;
pub mod policy;
pub mod report;
pub mod scope;

use std::path::{Path, PathBuf};

use policy::{collect_files, Class, FileEntry};
use report::{Report, Violation};

/// Number of rules the suite enforces (the `M rules` summary figure).
pub const RULE_COUNT: usize = 8;

/// Lint the workspace rooted at `root`.
pub fn run(root: &Path) -> Report {
    let (entries, io_errors) = collect_files(root);
    analyze(entries, io_errors)
}

/// Lint an in-memory file set. Public so tests can lint synthetic
/// workspaces (golden files, seeded mutations) without touching disk.
pub fn analyze(entries: Vec<FileEntry>, io_errors: Vec<(PathBuf, String)>) -> Report {
    let mut report = Report { files: entries.len(), rules: RULE_COUNT, ..Default::default() };
    for (rel, err) in io_errors {
        report.violations.push(Violation {
            file: rel,
            line: 1,
            rule: "io",
            message: format!("unreadable: {err}"),
        });
    }

    // Lex once; everything downstream shares the token stream.
    let lexed: Vec<lexer::SourceFile> = entries.iter().map(|e| lexer::lex(&e.src)).collect();
    let in_test: Vec<Vec<bool>> = entries
        .iter()
        .zip(&lexed)
        .map(|(e, sf)| {
            if e.class == Class::Test {
                vec![true; sf.lines.len()]
            } else {
                scope::test_scope(sf)
            }
        })
        .collect();

    report.waivers = lexed.iter().map(|sf| scope::count_waivers(&sf.lines)).sum();

    // Rules 1–3 per file.
    for ((e, sf), scope) in entries.iter().zip(&lexed).zip(&in_test) {
        report.violations.extend(basic::scan_file(e, &sf.lines, scope));
    }

    // Rule 4 per crate `src/` tree.
    let mut crate_keys: Vec<String> = Vec::new();
    for e in &entries {
        let rel = e.rel.to_string_lossy().replace('\\', "/");
        if let Some(pos) = rel.find("/src/") {
            let key = rel[..pos].to_string();
            if !crate_keys.contains(&key) {
                crate_keys.push(key);
            }
        }
    }
    for key in &crate_keys {
        let group: Vec<(&Path, &[lexer::LexedLine])> = entries
            .iter()
            .zip(&lexed)
            .filter(|(e, _)| {
                let rel = e.rel.to_string_lossy().replace('\\', "/");
                rel.starts_with(&format!("{key}/src/"))
            })
            .map(|(e, sf)| (e.rel.as_path(), sf.lines.as_slice()))
            .collect();
        report.violations.extend(basic::check_crate_attrs(Path::new(key), &group));
    }

    // Determinism pass: deterministic-lib production code only. Hash-typed
    // binding names are pooled across those crates so a field declared in
    // one module is recognized when a sibling module iterates it.
    let mut hash_bindings: Vec<String> = entries
        .iter()
        .zip(&lexed)
        .filter(|(e, _)| e.class == Class::DeterministicLib)
        .flat_map(|(_, sf)| determinism::hash_bindings(sf))
        .collect();
    hash_bindings.sort();
    hash_bindings.dedup();
    for ((e, sf), scope) in entries.iter().zip(&lexed).zip(&in_test) {
        if e.class == Class::DeterministicLib {
            report.violations.extend(determinism::check(e, sf, scope, &hash_bindings));
        }
    }

    // Structural facts for the whole workspace (coverage BFS spans it)…
    let facts: Vec<graph::FileFacts> = entries
        .iter()
        .zip(&lexed)
        .zip(&in_test)
        .enumerate()
        .map(|(i, ((e, sf), scope))| graph::file_facts(i, &e.crate_name, sf, scope))
        .collect();

    // …but lock-order and atomic-pairing police the deterministic crates.
    let det: Vec<(&Path, &graph::FileFacts)> = entries
        .iter()
        .zip(&facts)
        .filter(|(e, _)| e.class == Class::DeterministicLib)
        .map(|(e, f)| (e.rel.as_path(), f))
        .collect();
    report.violations.extend(lockorder::check(&det));
    report.violations.extend(atomics::check(&det));

    let (coverage, cov_violations) = coverage::check(&entries, &facts);
    report.coverage = coverage;
    report.violations.extend(cov_violations);

    report.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Convenience for tests: lint a synthetic workspace given
/// `(repo-relative path, source)` pairs. Classes are inferred exactly as
/// [`policy::collect_files`] would from the paths.
pub fn lint_sources(files: &[(&str, &str)]) -> Report {
    let entries: Vec<FileEntry> = files
        .iter()
        .map(|(rel, src)| {
            let rel_str = rel.replace('\\', "/");
            let crate_name = rel_str
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or_else(|| rel_str.split('/').next().unwrap_or("workspace"))
                .to_string();
            let class = if rel_str.starts_with("examples/")
                || rel_str.starts_with("tests/")
                || rel_str.contains("/tests/")
            {
                Class::Test
            } else if ["xlint", "vscheck", "bench"].contains(&crate_name.as_str()) {
                Class::HostTool
            } else {
                Class::DeterministicLib
            };
            FileEntry {
                rel: PathBuf::from(&rel_str),
                src: src.to_string(),
                crate_name,
                class,
                is_facade: rel_str.ends_with("/src/sync.rs"),
                is_bin: rel_str.contains("/src/bin/") || rel_str.ends_with("/src/main.rs"),
            }
        })
        .collect();
    analyze(entries, Vec::new())
}
