//! Structural analysis shared by the lock-order and model-coverage passes:
//! function extraction, a name-resolved intra-workspace call graph, lock
//! acquisition sites with guard scopes, and atomic load/store sites.
//!
//! Resolution is by *name*, deliberately over-approximate: a method call
//! `.evaluate(…)` is an edge to every workspace function named `evaluate`.
//! For coverage that errs toward "covered" only when a same-named function
//! really exists somewhere the model suites exercise; for lock-order it
//! errs toward more held-lock edges, i.e. false *positives*, which the
//! zero-violation baseline keeps honest. Turbofish calls (`f::<T>(…)`) are
//! not resolved — none exist on workspace-internal functions today.
//!
//! The one carve-out is [`UNRESOLVED_NAMES`]: ubiquitous std method and
//! trait names (`push`, `len`, `clone`, `drop`, …) are never resolved,
//! because name-only resolution would connect `Vec::push` to every
//! workspace `push` — and `drop(guard)` to every `impl Drop` — welding
//! unrelated locks into one fake cycle. Locks taken *inside* a workspace
//! fn with such a name are still seen when that fn's own body is scanned;
//! only the incoming call edge is cut.

use crate::lexer::{SourceFile, TokKind};

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "mut", "ref", "move",
    "box", "dyn", "impl", "where", "unsafe", "else", "fn", "use", "pub", "crate", "super", "Self",
    "self", "break", "continue", "yield",
];

/// Std prelude/collection/trait names excluded from call-graph edges (see
/// module docs). A same-named *workspace* helper loses its incoming edges
/// — the documented price of name-only resolution staying usable.
const UNRESOLVED_NAMES: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "ne",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_front",
    "remove",
    "replace",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "zip",
];

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Index of the owning file in the scan list.
    pub file: usize,
    pub line: usize,
    /// Token range of the body `{ … }`, inclusive of both braces.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// A call site inside some function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    pub tok: usize,
    /// Local index into this file's [`FileFacts::fns`].
    pub caller: usize,
    /// True when the site is in test scope. The coverage pass follows
    /// these edges (model tests *are* test code); lock-order does not.
    pub in_test: bool,
}

/// A lock acquisition (`….lock()`) with the token index where its guard
/// provably dies.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Crate-qualified lock identity, e.g. `vsscore/state` or
    /// `vsscore/grid_cache()` (last segment of the receiver chain).
    pub lock: String,
    pub tok: usize,
    pub line: usize,
    /// Guard scope end (token index): the statement's `;` for a temporary
    /// guard, the enclosing block's `}` for a `let`-bound guard.
    pub scope_end: usize,
    pub caller: usize,
}

/// An atomic memory operation with explicit `Ordering` arguments.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// Field name of the atomic (last receiver segment).
    pub field: String,
    pub file: usize,
    pub line: usize,
    pub is_load: bool,
    pub is_store: bool,
    /// Ordering idents in argument order (`compare_exchange` has two).
    pub orderings: Vec<String>,
    /// False when the receiver is a bare local ident (`|d| d.load(…)`) —
    /// an alias whose field the pass cannot name. Unqualified ops still
    /// satisfy pairing but are never themselves flagged.
    pub qualified: bool,
}

/// Per-file structural facts, token-indexed into that file's stream.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnDef>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub atomics: Vec<AtomicOp>,
    /// Sync facades imported outside test scope, as `owner::sync` strings.
    pub facade_imports: Vec<String>,
}

/// Extract structural facts from one lexed file. `skip_line[i]` (0-based)
/// marks test-scoped lines: lock/atomic sites there are dropped (those
/// passes police production code), call sites are kept but flagged, and
/// function *definitions* are always collected (model tests live in test
/// scope and must enter the call graph).
pub fn file_facts(
    file_idx: usize,
    crate_name: &str,
    sf: &SourceFile,
    skip_line: &[bool],
) -> FileFacts {
    let mut facts = FileFacts::default();
    let toks = &sf.tokens;
    let skip = |line: usize| line >= 1 && skip_line.get(line - 1).copied().unwrap_or(false);

    // Innermost enclosing `{` open-token index per token (MAX at top level).
    let mut encl_open = vec![usize::MAX; toks.len()];
    {
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            encl_open[i] = stack.last().copied().unwrap_or(usize::MAX);
            if t.kind == TokKind::Open && t.text == "{" && sf.matching(i).is_some() {
                stack.push(i);
            } else if t.kind == TokKind::Close && t.text == "}" {
                if let Some(&top) = stack.last() {
                    if sf.matching(top) == Some(i) {
                        stack.pop();
                    }
                }
            }
        }
    }

    // --- Function definitions ---------------------------------------
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        // `fn` in a fn-pointer type (`fn(…) -> …`) has no name ident.
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Open if toks[j].text == "{" => {
                        if let Some(c) = sf.matching(j) {
                            body = Some((j, c));
                        }
                        break;
                    }
                    TokKind::Open => {
                        j = sf.matching(j).map_or(j + 1, |c| c + 1);
                        continue;
                    }
                    TokKind::Punct if toks[j].text == ";" => break,
                    _ => {}
                }
                j += 1;
            }
            facts.fns.push(FnDef { name, file: file_idx, line, body });
        }
        i += 1;
    }

    // --- `use …::sync…;` facade imports (production scope only) ------
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") && !skip(toks[i].line) {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].is_ident("sync")
                    && j >= 3
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && toks[j - 3].kind == TokKind::Ident
                {
                    let owner = match toks[j - 3].text.as_str() {
                        "crate" => crate_name.to_string(),
                        // `std::sync` / `core::sync` are not facades.
                        "std" | "core" | "alloc" => {
                            j += 1;
                            continue;
                        }
                        other => other.to_string(),
                    };
                    let facade = format!("{owner}::sync");
                    if !facts.facade_imports.contains(&facade) {
                        facts.facade_imports.push(facade);
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }

    // --- Call, lock and atomic sites ---------------------------------
    const ATOMIC_OPS: &[&str] = &[
        "load",
        "store",
        "swap",
        "compare_exchange",
        "compare_exchange_weak",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "fetch_update",
        "fetch_min",
        "fetch_max",
    ];
    for k in 0..toks.len() {
        if toks[k].kind != TokKind::Ident {
            continue;
        }
        let in_test = skip(toks[k].line);
        let followed_by_paren =
            toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "(");
        if !followed_by_paren {
            continue;
        }
        let name = toks[k].text.as_str();
        // Macro invocation `name!(…)` never reaches here (the `!` sits
        // between name and paren), but `matches!`-style idents preceding
        // `!` are filtered anyway:
        if k > 0 && toks[k - 1].is_punct('!') {
            continue;
        }
        // Skip the definition itself.
        if k > 0 && toks[k - 1].is_ident("fn") {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let line = toks[k].line;
        if name == "lock" && k > 0 && toks[k - 1].is_punct('.') {
            if !in_test {
                let (chain_start, identity, _) = receiver_chain(sf, k - 2);
                let lock = format!("{crate_name}/{identity}");
                let scope_end = guard_scope_end(sf, &encl_open, chain_start, k);
                facts.locks.push(LockSite { lock, tok: k, line, scope_end, caller: usize::MAX });
            }
            continue;
        }
        if ATOMIC_OPS.contains(&name) && k > 0 && toks[k - 1].is_punct('.') {
            if let Some(close) = sf.matching(k + 1).filter(|_| !in_test) {
                let mut orderings = Vec::new();
                let mut a = k + 2;
                while a + 2 < close {
                    if toks[a].is_ident("Ordering")
                        && toks[a + 1].is_punct(':')
                        && toks[a + 2].is_punct(':')
                        && toks.get(a + 3).is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        orderings.push(toks[a + 3].text.clone());
                        a += 4;
                        continue;
                    }
                    a += 1;
                }
                if !orderings.is_empty() {
                    let (_, field, qualified) = receiver_chain(sf, k - 2);
                    let (is_load, is_store) = match name {
                        "load" => (true, false),
                        "store" => (false, true),
                        _ => (true, true), // RMW: both sides
                    };
                    facts.atomics.push(AtomicOp {
                        field,
                        file: file_idx,
                        line,
                        is_load,
                        is_store,
                        orderings,
                        qualified,
                    });
                }
            }
            // An atomic op is not a workspace call; fall through to record
            // it as a call anyway is harmless but noisy — skip.
            continue;
        }
        if UNRESOLVED_NAMES.contains(&name) {
            continue;
        }
        facts.calls.push(CallSite {
            callee: name.to_string(),
            tok: k,
            caller: usize::MAX,
            in_test,
        });
    }

    // Attribute calls/locks to the innermost enclosing fn body.
    let owner_of = |tok: usize| -> usize {
        let mut best = usize::MAX;
        let mut best_span = usize::MAX;
        for (f, d) in facts.fns.iter().enumerate() {
            if let Some((b, e)) = d.body {
                if b < tok && tok < e && e - b < best_span {
                    best = f;
                    best_span = e - b;
                }
            }
        }
        best
    };
    for c in &mut facts.calls {
        c.caller = owner_of(c.tok);
    }
    facts.calls.retain(|c| c.caller != usize::MAX);
    for l in &mut facts.locks {
        l.caller = owner_of(l.tok);
    }
    facts.locks.retain(|l| l.caller != usize::MAX);
    facts
}

/// Walk a receiver chain backwards from token `r` (the token just before
/// the `.` of a method call). Returns the chain's first token index, the
/// lock/atomic identity — the last chain segment, with `()` appended for
/// a call segment (`grid_cache().lock()` → `grid_cache()`) — and whether
/// the chain was qualified (more than a bare local ident).
/// `self.shared.state.lock()` → `state`; `self.done[job].swap(…)` → `done`.
fn receiver_chain(sf: &SourceFile, mut r: usize) -> (usize, String, bool) {
    let toks = &sf.tokens;
    let mut identity: Option<String> = None;
    let mut start = r;
    let mut qualified = false;
    loop {
        if r >= toks.len() {
            break;
        }
        match toks[r].kind {
            TokKind::Close => {
                let Some(open) = sf.matching(r) else { break };
                if toks[r].text == ")" && open > 0 && toks[open - 1].kind == TokKind::Ident {
                    // Call segment `name(…)`.
                    if identity.is_none() {
                        identity = Some(format!("{}()", toks[open - 1].text));
                    }
                    qualified = true;
                    start = open - 1;
                    r = open - 1;
                } else if toks[r].text == "]" {
                    // Index segment — transparent, keep walking.
                    if open == 0 {
                        break;
                    }
                    qualified = true;
                    start = open;
                    r = open - 1;
                    continue;
                } else {
                    break;
                }
            }
            TokKind::Ident => {
                if identity.is_none() && toks[r].text != "self" {
                    identity = Some(toks[r].text.clone());
                }
                start = r;
            }
            _ => break,
        }
        // Extend over `.` or `::` to the left.
        if r >= 1 && toks[r - 1].is_punct('.') && r >= 2 {
            qualified = true;
            r -= 2;
        } else if r >= 2 && toks[r - 1].is_punct(':') && toks[r - 2].is_punct(':') && r >= 3 {
            qualified = true;
            r -= 3;
        } else {
            break;
        }
    }
    (start, identity.unwrap_or_else(|| "<expr>".into()), qualified)
}

/// Where does the guard acquired at token `lock_tok` die?
/// The guard lives to the end of the enclosing block only when the
/// statement `let`-binds the guard itself — i.e. nothing but `.unwrap()`,
/// `.expect(…)` or `?` follows `.lock(…)` before the `;`. A projection
/// (`let x = m.lock().unwrap().field;`) or a plain temporary dies at the
/// statement's `;`. Conservative fallback: end of enclosing block.
fn guard_scope_end(
    sf: &SourceFile,
    encl_open: &[usize],
    chain_start: usize,
    lock_tok: usize,
) -> usize {
    let toks = &sf.tokens;
    let my_block = encl_open.get(lock_tok).copied().unwrap_or(usize::MAX);
    let block_close = if my_block == usize::MAX {
        toks.len().saturating_sub(1)
    } else {
        sf.matching(my_block).unwrap_or(toks.len().saturating_sub(1))
    };
    // Statement prefix: scan back from the chain start to the previous `;`
    // or block boundary at the same nesting level.
    let mut has_let = false;
    let mut guard_name: Option<&str> = None;
    let mut b = chain_start;
    while b > 0 {
        b -= 1;
        if encl_open.get(b).copied() != Some(my_block).filter(|&m| m != usize::MAX)
            && encl_open.get(b).copied().unwrap_or(usize::MAX) != my_block
        {
            // Left our nesting level (inside a sub-group is fine to skip).
            if b == my_block {
                break;
            }
            continue;
        }
        if toks[b].is_punct(';') || (toks[b].kind == TokKind::Open && toks[b].text == "{") {
            break;
        }
        if toks[b].is_ident("let") {
            has_let = true;
            let mut j = b + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            guard_name = toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str());
            break;
        }
    }
    // The binding is the guard only if `.lock(…)` is the whole initializer
    // modulo `.unwrap()` / `.expect(…)` / `?`.
    let binds_guard = has_let && {
        let mut f = toks
            .get(lock_tok + 1)
            .filter(|t| t.kind == TokKind::Open)
            .and_then(|_| sf.matching(lock_tok + 1))
            .map_or(toks.len(), |c| c + 1);
        loop {
            match toks.get(f) {
                Some(t) if t.is_punct(';') => break true,
                Some(t) if t.is_punct('?') => f += 1,
                Some(t)
                    if t.is_punct('.')
                        && toks.get(f + 1).is_some_and(|m| {
                            m.is_ident("unwrap")
                                || m.is_ident("expect")
                                || m.is_ident("unwrap_or_else")
                        }) =>
                {
                    match toks.get(f + 2).and_then(|_| sf.matching(f + 2)) {
                        Some(c) => f = c + 1,
                        None => break false,
                    }
                }
                _ => break false,
            }
        }
    };
    if binds_guard {
        // An explicit `drop(name)` kills the guard before the block ends.
        if let Some(name) = guard_name {
            let mut d = lock_tok;
            while d + 3 <= block_close {
                if toks[d].is_ident("drop")
                    && toks[d + 1].kind == TokKind::Open
                    && toks[d + 1].text == "("
                    && toks[d + 2].is_ident(name)
                    && toks[d + 3].is_punct(')')
                {
                    return d + 3;
                }
                d += 1;
            }
        }
        return block_close;
    }
    // Temporary or projected binding: next `;` at this nesting level.
    let mut f = lock_tok;
    while f < toks.len() {
        if toks[f].is_punct(';') && encl_open[f] == my_block {
            return f;
        }
        if f == block_close {
            break;
        }
        f += 1;
    }
    block_close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(src: &str) -> FileFacts {
        let sf = lex(src);
        let skip = vec![false; sf.lines.len()];
        file_facts(0, "demo", &sf, &skip)
    }

    #[test]
    fn functions_and_calls_extracted() {
        let f = facts("fn a() { b(); c.d(); }\nfn b() {}\n");
        let names: Vec<&str> = f.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let callees: Vec<&str> = f.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["b", "d"]);
        assert_eq!(f.calls[0].caller, 0);
    }

    #[test]
    fn fn_pointer_type_is_not_a_definition() {
        let f = facts("fn a(cb: fn(u32) -> u32) { cb(1); }\n");
        assert_eq!(f.fns.len(), 1);
    }

    #[test]
    fn lock_receivers_resolve_to_field_names() {
        let f = facts(
            "fn a(&self) {\n    let g = self.shared.state.lock().unwrap();\n    grid_cache().lock();\n}\n",
        );
        let locks: Vec<&str> = f.locks.iter().map(|l| l.lock.as_str()).collect();
        assert_eq!(locks, ["demo/state", "demo/grid_cache()"]);
    }

    #[test]
    fn let_guard_scopes_to_block_and_temporary_to_statement() {
        let src = "fn a(&self) {\n    let g = self.a.lock().unwrap();\n    self.b.lock().unwrap().push(1);\n    self.c.lock();\n}\n";
        let f = facts(src);
        assert_eq!(f.locks.len(), 3);
        let sf = lex(src);
        // let-bound guard: scope runs to the closing brace (last token).
        let a = &f.locks[0];
        assert_eq!(sf.tokens[a.scope_end].text, "}");
        // temporary: scope ends at its own `;`, before the c lock.
        let b = &f.locks[1];
        assert_eq!(sf.tokens[b.scope_end].text, ";");
        assert!(b.scope_end < f.locks[2].tok);
    }

    #[test]
    fn std_method_names_are_not_call_edges() {
        let f = facts("fn a(&self) { self.v.push(1); drop(self.g); helper(); }\n");
        let callees: Vec<&str> = f.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["helper"]);
    }

    #[test]
    fn drop_narrows_let_guard_scope() {
        let src = "fn a(&self) { let g = self.x.lock().unwrap(); drop(g); self.y.lock(); }\n";
        let f = facts(src);
        assert_eq!(f.locks.len(), 2);
        assert!(f.locks[0].scope_end < f.locks[1].tok, "guard dies at drop(g)");
    }

    #[test]
    fn unwrap_or_else_binds_the_guard() {
        let src = "fn a(&self) {\n    let g = self.x.lock().unwrap_or_else(|e| e.into_inner());\n    self.y.lock();\n}\n";
        let f = facts(src);
        assert!(f.locks[0].scope_end > f.locks[1].tok, "guard lives past the y lock");
    }

    #[test]
    fn projected_let_binding_is_not_a_guard() {
        // `let x = m.lock().expect("…").field;` binds the projection, not
        // the guard — the guard dies at the statement.
        let src = "fn a(&self) {\n    let s = self.state.lock().expect(\"poisoned\").slowdown;\n    self.other.lock();\n}\n";
        let f = facts(src);
        let sf = lex(src);
        assert_eq!(sf.tokens[f.locks[0].scope_end].text, ";");
        assert!(f.locks[0].scope_end < f.locks[1].tok);
    }

    #[test]
    fn indexed_receiver_skips_the_index() {
        let f = facts("fn a(&self) { self.done[job].swap(true, Ordering::AcqRel); }\n");
        assert_eq!(f.atomics.len(), 1);
        assert_eq!(f.atomics[0].field, "done");
        assert!(f.atomics[0].is_load && f.atomics[0].is_store);
        assert_eq!(f.atomics[0].orderings, ["AcqRel"]);
    }

    #[test]
    fn atomic_ops_require_an_ordering_argument() {
        // A parser's own `load(path)` helper is not an atomic op.
        let f =
            facts("fn a(&self) { self.cfg.load(path); self.seq.store(1, Ordering::Release); }\n");
        assert_eq!(f.atomics.len(), 1);
        assert_eq!(f.atomics[0].field, "seq");
        assert!(f.atomics[0].is_store && !f.atomics[0].is_load);
    }

    #[test]
    fn facade_imports_found_and_std_sync_excluded() {
        let f =
            facts("use crate::sync::Mutex;\nuse std::sync::Arc;\nuse vscheck::sync::Condvar;\n");
        assert_eq!(f.facade_imports, ["demo::sync", "vscheck::sync"]);
    }

    #[test]
    fn test_scope_keeps_calls_but_drops_lock_sites() {
        let src = "fn model_x() { target(); m.lock(); a.store(1, Ordering::Release); }\n";
        let sf = lex(src);
        let skip = vec![true; sf.lines.len()];
        let f = file_facts(0, "demo", &sf, &skip);
        assert_eq!(f.fns.len(), 1, "defs always collected");
        assert_eq!(f.calls.len(), 1, "coverage still follows test-scope calls");
        assert!(f.calls[0].in_test);
        assert!(f.locks.is_empty() && f.atomics.is_empty(), "prod-only passes skip test scope");
    }
}
