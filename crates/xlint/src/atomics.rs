//! The `atomic-pairing` pass: a release without an acquire publishes
//! nothing, and an acquire without a release observes nothing. For every
//! atomic field in the deterministic crates, a `Release`-class store
//! (`Release`/`AcqRel`/`SeqCst`) must have at least one `Acquire`-class
//! load (`Acquire`/`AcqRel`/`SeqCst`) somewhere in the workspace, and
//! vice versa. RMW operations count on both sides; `compare_exchange`'s
//! failure ordering counts on the load side; fields touched only with
//! `Relaxed` claim no publication and are skipped.
//!
//! Field identity is the receiver's last segment (`self.done[job].swap`
//! pairs under `done`), matched globally — the cheap static complement to
//! vscheck actually exploring the reorderings.

use std::collections::BTreeMap;
use std::path::Path;

use crate::graph::FileFacts;
use crate::report::Violation;

fn release_class(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}

fn acquire_class(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// Run the pass over the deterministic crates' facts.
pub fn check(files: &[(&Path, &FileFacts)]) -> Vec<Violation> {
    #[derive(Default)]
    struct Sides {
        releases: Vec<(usize, usize)>, // (file, line) of Release-class stores
        acquires: Vec<(usize, usize)>,
    }
    let mut fields: BTreeMap<&str, Sides> = BTreeMap::new();
    for (fi, (_, f)) in files.iter().enumerate() {
        for op in &f.atomics {
            // Unqualified receivers (`|d| d.load(…)`) alias a field this
            // pass cannot name; they neither flag nor satisfy. The field's
            // own qualified sites must pair on their own.
            if !op.qualified {
                continue;
            }
            let e = fields.entry(op.field.as_str()).or_default();
            if op.is_store && op.orderings.first().is_some_and(|o| release_class(o)) {
                e.releases.push((fi, op.line));
            }
            if op.is_load && op.orderings.iter().any(|o| acquire_class(o)) {
                e.acquires.push((fi, op.line));
            }
        }
    }

    let mut out = Vec::new();
    for (field, sides) in &fields {
        if sides.acquires.is_empty() {
            for &(fi, line) in &sides.releases {
                out.push(Violation {
                    file: files[fi].0.to_path_buf(),
                    line,
                    rule: "atomic-pairing",
                    message: format!(
                        "`Release`-class store on `{field}` has no `Acquire`/`SeqCst` load \
                         anywhere in the workspace: nothing can observe the publication"
                    ),
                });
            }
        }
        if sides.releases.is_empty() {
            for &(fi, line) in &sides.acquires {
                out.push(Violation {
                    file: files[fi].0.to_path_buf(),
                    line,
                    rule: "atomic-pairing",
                    message: format!(
                        "`Acquire`-class load of `{field}` has no `Release`/`SeqCst` store \
                         anywhere in the workspace: there is no publication to synchronize with"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::file_facts;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(srcs: &[&str]) -> Vec<Violation> {
        let mut rels = Vec::new();
        let mut facts = Vec::new();
        for (i, src) in srcs.iter().enumerate() {
            let sf = lex(src);
            let skip = vec![false; sf.lines.len()];
            facts.push(file_facts(i, "demo", &sf, &skip));
            rels.push(PathBuf::from(format!("crates/demo/src/f{i}.rs")));
        }
        let files: Vec<(&Path, &FileFacts)> =
            rels.iter().map(|r| r.as_path()).zip(facts.iter()).collect();
        check(&files)
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let v = run(&[
            "fn pubish(&self) { self.seq.store(1, Ordering::Release); }\n",
            "fn observe(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n",
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unmatched_release_store_flagged() {
        let v = run(&["fn pubish(&self) { self.seq.store(1, Ordering::Release); }\n"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no `Acquire`"), "{v:?}");
    }

    #[test]
    fn unmatched_acquire_load_flagged() {
        let v = run(&[
            "fn observe(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n",
            "fn write(&self) { self.seq.store(1, Ordering::Relaxed); }\n",
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no `Release`"), "{v:?}");
    }

    #[test]
    fn rmw_counts_on_both_sides() {
        let v = run(&[
            "fn a(&self) { self.done.swap(true, Ordering::AcqRel); }\n",
            "fn b(&self) -> bool { self.done.load(Ordering::Acquire) }\n",
        ]);
        assert!(v.is_empty(), "swap is both a release and an acquire: {v:?}");
    }

    #[test]
    fn compare_exchange_failure_ordering_is_a_load() {
        let v = run(&[
            "fn a(&self) { self.s.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n",
        ]);
        assert!(v.is_empty(), "cx pairs with itself: {v:?}");
    }

    #[test]
    fn relaxed_only_field_skipped() {
        let v = run(&[
            "fn a(&self) { self.stat.fetch_add(1, Ordering::Relaxed); }\n",
            "fn b(&self) -> u64 { self.stat.load(Ordering::Relaxed) }\n",
        ]);
        assert!(v.is_empty(), "{v:?}");
    }
}
