//! The four v1 rules — `unsafe-safety`, `relaxed-ordering`, `no-panic`,
//! `crate-attrs` — ported onto the token-tree lexer and policy classes.
//! Their observable behavior is unchanged from the line-based linter; the
//! test-scope resolution underneath them is now attribute-driven instead
//! of brace-counting.

use std::path::Path;

use crate::lexer::LexedLine;
use crate::policy::{Class, FileEntry};
use crate::report::Violation;
use crate::scope::{comment_window_has, PANICS_WINDOW, SAFETY_WINDOW};

/// Module paths (relative to the repo root) where `Ordering::Relaxed` is
/// permitted. Keep this list short and reviewed: each entry is a lock-free
/// hot path whose orderings are argued in its module docs.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/vstrace/src/ring.rs",
    "crates/vstrace/src/sink.rs",
    "crates/vsscore/src/scorer.rs",
    "crates/vscheck/", // model checker: orderings collapse to SeqCst under the model
    // Work-stealing chunk deque: the packed range word is the entire
    // shared state (no payload published through it); orderings argued in
    // the module docs and model-checked under vscheck-model.
    "crates/vsched/src/deque.rs",
];

/// Position of `needle` in `hay` as a standalone word (no identifier
/// characters adjacent on either side), if any.
pub fn has_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let ok_after =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Rules 1–3 on one file. `lines`/`in_test` come from the shared lex so
/// the file is tokenized once across all passes.
pub fn scan_file(entry: &FileEntry, lines: &[LexedLine], in_test: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    let rel_str = entry.rel.to_string_lossy().replace('\\', "/");
    let relaxed_ok = RELAXED_ALLOWLIST.iter().any(|p| {
        if p.ends_with('/') {
            rel_str.starts_with(p)
        } else {
            rel_str == *p
        }
    });

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;

        // Rule 1: unsafe needs SAFETY. `unsafe fn` declarations are exempt
        // (deny(unsafe_op_in_unsafe_fn) pushes the obligation onto inner
        // blocks); `unsafe impl` and `unsafe {` are not.
        if let Some(pos) = has_word(code, "unsafe") {
            let after = code[pos + "unsafe".len()..].trim_start();
            let is_fn_decl = after.starts_with("fn ") || after.starts_with("extern ");
            if !is_fn_decl && !comment_window_has(lines, idx, SAFETY_WINDOW, "SAFETY:") {
                out.push(Violation {
                    file: entry.rel.clone(),
                    line: lineno,
                    rule: "unsafe-safety",
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines"
                    ),
                });
            }
        }

        // Rule 2: Relaxed only in allowlisted lock-free modules.
        if !relaxed_ok && code.contains("Ordering::Relaxed") {
            out.push(Violation {
                file: entry.rel.clone(),
                line: lineno,
                rule: "relaxed-ordering",
                message: "`Ordering::Relaxed` outside allowlisted lock-free modules \
                          (see RELAXED_ALLOWLIST in xlint)"
                    .into(),
            });
        }

        // Rule 3: no unwrap/expect in library code outside tests without a
        // PANICS waiver. `.expect(` counts only when the argument is a
        // string literal, so user-defined `Result`-returning methods that
        // happen to be named `expect` (e.g. a parser's `expect(b'{')?`)
        // are not misflagged. Binary entry points and the `test` policy
        // class are exempt.
        if !entry.is_bin && entry.class != Class::Test && !in_test[idx] {
            for pat in [".unwrap()", ".expect("] {
                let hit = if pat == ".unwrap()" {
                    code.contains(pat)
                } else {
                    code.match_indices(pat).any(|(pos, _)| {
                        let arg = code[pos + pat.len()..].trim_start();
                        arg.starts_with('"') || arg.starts_with("r\"")
                    })
                };
                if hit && !comment_window_has(lines, idx, PANICS_WINDOW, "PANICS:") {
                    out.push(Violation {
                        file: entry.rel.clone(),
                        line: lineno,
                        rule: "no-panic",
                        message: format!(
                            "`{pat}` in library code without a `// PANICS:` waiver within \
                             {PANICS_WINDOW} lines"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Rule 4: crate-level attribute coverage, over one crate's `src/` files.
/// Crates whose sources contain no `unsafe` must declare
/// `#![forbid(unsafe_code)]`; crates that do use `unsafe` must declare
/// `#![deny(unsafe_op_in_unsafe_fn)]`. Integration-test directories are
/// separate compilation units and are not considered here.
pub fn check_crate_attrs(crate_rel: &Path, files: &[(&Path, &[LexedLine])]) -> Vec<Violation> {
    let mut out = Vec::new();
    let uses_unsafe =
        files.iter().any(|(_, lines)| lines.iter().any(|l| has_word(&l.code, "unsafe").is_some()));
    let root = files
        .iter()
        .find(|(p, _)| p.ends_with("src/lib.rs"))
        .or_else(|| files.iter().find(|(p, _)| p.ends_with("src/main.rs")));
    let Some((root_path, root_lines)) = root else { return out };
    let root_code: String = root_lines.iter().map(|l| l.code.clone() + "\n").collect();
    let want =
        if uses_unsafe { "#![deny(unsafe_op_in_unsafe_fn)]" } else { "#![forbid(unsafe_code)]" };
    if !root_code.contains(want) {
        out.push(Violation {
            file: root_path.to_path_buf(),
            line: 1,
            rule: "crate-attrs",
            message: format!(
                "crate `{}` {} `unsafe`: missing `{want}`",
                crate_rel.file_name().unwrap_or_default().to_string_lossy(),
                if uses_unsafe { "uses" } else { "has no" },
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_scope;
    use std::path::PathBuf;

    fn entry(rel: &str, class: Class, src: &str) -> FileEntry {
        FileEntry {
            rel: PathBuf::from(rel),
            src: src.to_string(),
            crate_name: "demo".into(),
            class,
            is_facade: rel.ends_with("/src/sync.rs"),
            is_bin: rel.contains("/src/bin/") || rel.ends_with("/src/main.rs"),
        }
    }

    fn lint_at(rel: &str, class: Class, src: &str) -> Vec<Violation> {
        let e = entry(rel, class, src);
        let sf = lex(&e.src);
        let in_test = test_scope(&sf);
        scan_file(&e, &sf.lines, &in_test)
    }

    fn lint(src: &str) -> Vec<Violation> {
        lint_at("crates/demo/src/lib.rs", Class::DeterministicLib, src)
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let v = lint("fn f() {\n    unsafe { noop() }\n}\n");
        assert!(v.iter().any(|v| v.rule == "unsafe-safety" && v.line == 2), "{v:?}");
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let v = lint("fn f() {\n    // SAFETY: proven above.\n    unsafe { noop() }\n}\n");
        assert!(v.iter().all(|v| v.rule != "unsafe-safety"), "{v:?}");
    }

    #[test]
    fn unsafe_fn_declaration_exempt_but_impl_not() {
        let v = lint("unsafe fn raw() {}\nunsafe impl Send for X {}\n");
        assert!(v.iter().all(|v| v.line != 1), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "unsafe-safety" && v.line == 2), "{v:?}");
    }

    #[test]
    fn unsafe_inside_string_or_ident_ignored() {
        let v = lint("fn f() { let s = \"unsafe block\"; forbid(unsafe_code); }\n");
        assert!(v.iter().all(|v| v.rule != "unsafe-safety"), "{v:?}");
    }

    #[test]
    fn relaxed_flagged_outside_allowlist() {
        let v = lint("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n");
        assert!(v.iter().any(|v| v.rule == "relaxed-ordering"), "{v:?}");
    }

    #[test]
    fn relaxed_allowed_in_allowlisted_file_and_prefix() {
        for path in ["crates/vstrace/src/ring.rs", "crates/vscheck/src/sched.rs"] {
            let v = lint_at(
                path,
                Class::DeterministicLib,
                "fn f(a: &A) { a.load(Ordering::Relaxed); }\n",
            );
            assert!(v.iter().all(|v| v.rule != "relaxed-ordering"), "{path}: {v:?}");
        }
    }

    #[test]
    fn unwrap_without_waiver_flagged() {
        let v = lint("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn unwrap_with_panics_waiver_passes() {
        let v = lint(
            "fn f(x: Option<u32>) -> u32 {\n    // PANICS: x is Some by construction.\n    x.unwrap()\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn expect_in_cfg_test_mod_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(x: Option<u32>) -> u32 { x.expect(\"set\") }\n}\nfn lib(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src);
        assert!(v.iter().all(|v| v.line != 3), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "no-panic" && v.line == 5), "{v:?}");
    }

    #[test]
    fn cfg_all_test_feature_mod_exempt() {
        let src = "#[cfg(all(test, feature = \"m\"))]\nmod model {\n    fn h(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let v = lint(src);
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn user_defined_expect_method_not_flagged() {
        // A parser's own `expect(byte)` helper is not Option/Result::expect.
        let v = lint("fn object(&mut self) -> Result<V, String> { self.expect(b'{')?; todo!() }\n");
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn bin_sources_exempt_from_no_panic() {
        let v = lint_at(
            "crates/demo/src/bin/tool.rs",
            Class::HostTool,
            "fn main() { std::fs::read(\"x\").unwrap(); }\n",
        );
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
    }

    #[test]
    fn test_class_exempt_from_no_panic_but_not_unsafe() {
        let src = "fn check() { x.unwrap();\n    unsafe { noop() }\n}\n";
        let v = lint_at("crates/demo/tests/it.rs", Class::Test, src);
        assert!(v.iter().all(|v| v.rule != "no-panic"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "unsafe-safety"), "{v:?}");
    }

    fn attrs(files: &[(&str, &str)]) -> Vec<Violation> {
        let lexed: Vec<(PathBuf, Vec<LexedLine>)> =
            files.iter().map(|(p, s)| (PathBuf::from(p), lex(s).lines)).collect();
        let refs: Vec<(&Path, &[LexedLine])> =
            lexed.iter().map(|(p, l)| (p.as_path(), l.as_slice())).collect();
        check_crate_attrs(Path::new("crates/demo"), &refs)
    }

    #[test]
    fn crate_attr_forbid_required_without_unsafe() {
        let v = attrs(&[("crates/demo/src/lib.rs", "fn f() {}\n")]);
        assert!(v.iter().any(|v| v.rule == "crate-attrs" && v.message.contains("forbid")), "{v:?}");
        let v = attrs(&[("crates/demo/src/lib.rs", "#![forbid(unsafe_code)]\nfn f() {}\n")]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crate_attr_deny_required_with_unsafe() {
        let v =
            attrs(&[("crates/demo/src/lib.rs", "// SAFETY: demo\nunsafe impl Send for X {}\n")]);
        assert!(
            v.iter().any(|v| v.rule == "crate-attrs" && v.message.contains("unsafe_op")),
            "{v:?}"
        );
    }

    #[test]
    fn forbid_attr_in_comment_does_not_count() {
        let v = attrs(&[("crates/demo/src/lib.rs", "// #![forbid(unsafe_code)]\nfn f() {}\n")]);
        assert!(v.iter().any(|v| v.rule == "crate-attrs"), "{v:?}");
    }
}
