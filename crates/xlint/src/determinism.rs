//! The `determinism` pass: deterministic-lib crates feed bit-identity
//! contracts (goldens, per-seed reports, lockstep-vs-pipelined equality),
//! so three families of nondeterminism are banned in their production
//! code unless waived with a `// DETERMINISM:` comment within three lines:
//!
//! 1. **Wall clock and OS entropy** — `Instant::now`, `SystemTime`,
//!    `UNIX_EPOCH`, `RandomState`, `thread_rng`, `from_entropy`,
//!    `getrandom`. Time belongs to vstrace's epoch (off the determinism
//!    contract by design); randomness to `vsmath::rng` seeded streams.
//! 2. **Hash-order iteration** — `for … in` over, or `.iter()`-family
//!    calls on, bindings whose declared type mentions `HashMap`/`HashSet`.
//!    Keyed lookup is fine; iteration order is address-seeded and varies
//!    across runs. Use `BTreeMap`/`BTreeSet` or sort before iterating.
//! 3. **Raw threading/blocking primitives** — `std::thread` and
//!    `std::sync::{Mutex, RwLock, Condvar, Barrier, mpsc}` outside the
//!    per-crate `src/sync.rs` facades, which are the reviewed seam where
//!    the model checker can substitute its own primitives. (`Arc`,
//!    atomics and `OnceLock` are memory-layout tools, not schedulers, and
//!    stay allowed.)
//!
//! Host-tool and test classes are exempt: measuring wall time and using
//! hash maps is exactly what harnesses do.

use crate::lexer::{SourceFile, TokKind};
use crate::policy::FileEntry;
use crate::report::Violation;
use crate::scope::{comment_window_has, DETERMINISM_WINDOW};

/// Identifiers that read the wall clock or OS entropy.
const CLOCK_ENTROPY_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "wall clock"),
    ("UNIX_EPOCH", "wall clock"),
    ("RandomState", "OS-entropy hasher seed"),
    ("thread_rng", "OS entropy"),
    ("from_entropy", "OS entropy"),
    ("getrandom", "OS entropy"),
];

/// `std::sync` members that schedule or block. Everything else re-exported
/// there (`Arc`, `atomic`, `OnceLock`, `LazyLock`, `Weak`, `Once`) is fine.
const BANNED_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"];

/// Iteration methods whose visit order follows the hasher.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "retain", "into_iter"];

/// Bindings with hash-ordered types declared in this file:
/// `name: …HashMap…` (fields, params, type ascriptions) and
/// `let [mut] name = HashMap::…` both register `name`. Collected
/// workspace-wide across the deterministic crates so a field declared in
/// one module is still recognized when a sibling module iterates it.
pub fn hash_bindings(sf: &SourceFile) -> Vec<String> {
    let toks = &sf.tokens;
    let mut hash_bindings: Vec<String> = Vec::new();
    for k in 0..toks.len() {
        if !(toks[k].is_ident("HashMap") || toks[k].is_ident("HashSet")) {
            continue;
        }
        // Walk back over the type expression to the `name :` that owns it,
        // bounded so an unrelated earlier `:` is not misattributed.
        let mut b = k;
        let mut steps = 0;
        while b > 0 && steps < 24 {
            b -= 1;
            steps += 1;
            let t = &toks[b];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_ident("let") {
                break;
            }
            if t.is_punct(':')
                && b > 0
                && !toks[b - 1].is_punct(':')
                && !toks.get(b + 1).is_some_and(|n| n.is_punct(':'))
                && toks[b - 1].kind == TokKind::Ident
            {
                hash_bindings.push(toks[b - 1].text.clone());
                break;
            }
        }
        // `let [mut] name = HashMap::new()`-style initializations.
        let mut b = k;
        let mut steps = 0;
        while b > 0 && steps < 12 {
            b -= 1;
            steps += 1;
            if toks[b].is_punct(';') {
                break;
            }
            if toks[b].is_ident("let") {
                let mut n = b + 1;
                if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if let Some(t) = toks.get(n) {
                    if t.kind == TokKind::Ident {
                        hash_bindings.push(t.text.clone());
                    }
                }
                break;
            }
        }
    }
    hash_bindings.sort();
    hash_bindings.dedup();
    hash_bindings
}

/// Run the determinism pass on one deterministic-lib file.
/// `hash_bindings` is the workspace-wide set from [`hash_bindings`].
pub fn check(
    entry: &FileEntry,
    sf: &SourceFile,
    in_test: &[bool],
    hash_bindings: &[String],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &sf.tokens;
    let skip = |line: usize| line >= 1 && in_test.get(line - 1).copied().unwrap_or(false);
    let waived =
        |line: usize| comment_window_has(&sf.lines, line - 1, DETERMINISM_WINDOW, "DETERMINISM:");
    let mut push = |line: usize, message: String| {
        out.push(Violation { file: entry.rel.clone(), line, rule: "determinism", message });
    };
    let is_hash_binding =
        |name: &str| hash_bindings.binary_search_by(|b| b.as_str().cmp(name)).is_ok();

    // `for (k, v) in m.iter()` matches both the method and the for-loop
    // detector; one finding per line is enough.
    let mut hash_flagged_lines: std::collections::BTreeSet<usize> =
        std::collections::BTreeSet::new();

    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident || skip(t.line) || waived(t.line) {
            continue;
        }

        // Wall clock / entropy idents.
        if t.is_ident("Instant")
            && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(k + 3).is_some_and(|n| n.is_ident("now"))
        {
            push(t.line, "`Instant::now()` in deterministic code: thread a clock in from the caller (vstrace's epoch is the sanctioned edge)".into());
            continue;
        }
        if let Some((_, what)) = CLOCK_ENTROPY_IDENTS.iter().find(|(id, _)| t.is_ident(id)) {
            push(t.line, format!("`{}` ({what}) in deterministic code: use vsmath::rng seeded streams / caller-provided time", t.text));
            continue;
        }

        // Raw std::thread / std::sync outside the sync facades.
        if t.is_ident("std") && !entry.is_facade {
            let path_next = |at: usize| -> Option<&crate::lexer::Token> {
                (toks.get(at)?.is_punct(':') && toks.get(at + 1)?.is_punct(':'))
                    .then(|| toks.get(at + 2))
                    .flatten()
            };
            let Some(seg1) = path_next(k + 1) else { continue };
            if seg1.is_ident("thread") {
                push(t.line, "`std::thread` in deterministic code: spawn through the crate's reviewed sync facade or a pool/executor".into());
                continue;
            }
            if seg1.is_ident("sync") {
                // `std::sync::Member` or `std::sync::{A, B, …}`.
                if let Some(seg2) = path_next(k + 4) {
                    if seg2.kind == TokKind::Open && seg2.text == "{" {
                        if let Some(close) = sf.matching(k + 6) {
                            for m in toks.iter().take(close).skip(k + 7) {
                                if BANNED_SYNC.iter().any(|b| m.is_ident(b)) {
                                    push(
                                        m.line,
                                        format!("raw `std::sync::{}` outside the sync facade: import it from `crate::sync` so vscheck can model it", m.text),
                                    );
                                }
                            }
                        }
                    } else if let Some(b) = BANNED_SYNC.iter().find(|b| seg2.is_ident(b)).copied() {
                        push(t.line, format!("raw `std::sync::{b}` outside the sync facade: import it from `crate::sync` so vscheck can model it"));
                    }
                }
                continue;
            }
        }

        // Hash-order iteration: `binding.iter()`-family …
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && k >= 2
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Open && n.text == "(")
            && toks[k - 2].kind == TokKind::Ident
            && is_hash_binding(&toks[k - 2].text)
            && hash_flagged_lines.insert(t.line)
        {
            push(
                t.line,
                format!(
                    "hash-order iteration `{}.{}()`: ordering is address-seeded; use BTreeMap/BTreeSet or sort first",
                    toks[k - 2].text, t.text
                ),
            );
            continue;
        }

        // … and `for pat in <expr mentioning a hash binding> {`.
        if t.is_ident("for") {
            let mut j = k + 1;
            // Find the `in` at group depth 0 (skip pattern groups).
            while j < toks.len() && !toks[j].is_ident("in") {
                if toks[j].kind == TokKind::Open {
                    j = sf.matching(j).map_or(j + 1, |c| c + 1);
                    continue;
                }
                if toks[j].kind == TokKind::Close || toks[j].is_punct(';') {
                    j = toks.len();
                }
                j += 1;
            }
            let mut e = j + 1;
            while e < toks.len() && !(toks[e].kind == TokKind::Open && toks[e].text == "{") {
                if toks[e].kind == TokKind::Ident
                    && is_hash_binding(&toks[e].text)
                    && hash_flagged_lines.insert(toks[e].line)
                {
                    push(
                        toks[e].line,
                        format!(
                            "hash-order iteration: `for … in` over `{}` (HashMap/HashSet); use BTreeMap/BTreeSet or sort first",
                            toks[e].text
                        ),
                    );
                    break;
                }
                if toks[e].kind == TokKind::Open {
                    // Arguments of calls in the iterated expression can't
                    // be the collection being iterated structurally, but a
                    // hash binding inside still means hash-ordered input —
                    // keep scanning inside groups.
                }
                e += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::policy::Class;
    use crate::scope::test_scope;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        run_at("crates/demo/src/lib.rs", src)
    }

    fn run_at(rel: &str, src: &str) -> Vec<Violation> {
        let entry = FileEntry {
            rel: PathBuf::from(rel),
            src: src.to_string(),
            crate_name: "demo".into(),
            class: Class::DeterministicLib,
            is_facade: rel.ends_with("/src/sync.rs"),
            is_bin: false,
        };
        let sf = lex(src);
        let in_test = test_scope(&sf);
        let bindings = hash_bindings(&sf);
        check(&entry, &sf, &in_test, &bindings)
    }

    #[test]
    fn instant_now_flagged_and_waivable() {
        let v = run("fn f() { let t = Instant::now(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Instant::now"));
        let v = run("fn f() {\n    // DETERMINISM: build timing is excluded from the contract.\n    let t = Instant::now();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn instant_in_string_or_test_scope_not_flagged() {
        assert!(run("fn f() { let s = \"Instant::now\"; }\n").is_empty());
        assert!(
            run("#[cfg(test)]\nmod t {\n    fn f() { let t = Instant::now(); }\n}\n").is_empty()
        );
    }

    #[test]
    fn entropy_idents_flagged() {
        let v = run("fn f() { let h: RandomState = RandomState::new(); }\n");
        assert!(!v.is_empty());
        assert!(v[0].message.contains("entropy"), "{v:?}");
    }

    #[test]
    fn hash_map_iteration_flagged_lookup_not() {
        let src = "struct S { names: HashMap<u32, String> }\nimpl S {\n    fn a(&self) { for (k, v) in self.names.iter() { use_it(k, v); } }\n    fn b(&self) -> Option<&String> { self.names.get(&1) }\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("names"));
    }

    #[test]
    fn for_loop_over_hash_binding_flagged() {
        let v = run("fn f(m: HashMap<u32, u32>) { for k in &m { touch(k); } }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn let_bound_hashmap_drain_flagged() {
        let v = run("fn f() { let mut seen = HashMap::new(); seen.drain().count(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("drain"));
    }

    #[test]
    fn btreemap_iteration_fine() {
        assert!(
            run("fn f(m: &BTreeMap<u32, u32>) { for k in m.keys() { touch(k); } }\n").is_empty()
        );
    }

    #[test]
    fn raw_std_sync_mutex_flagged_arc_not() {
        let v = run("use std::sync::{Arc, Mutex, OnceLock};\nfn f() {}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Mutex"));
        assert!(run("use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n").is_empty());
    }

    #[test]
    fn std_thread_flagged_outside_facade_allowed_inside() {
        let v = run("fn f() { std::thread::scope(|s| {}); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v =
            run_at("crates/demo/src/sync.rs", "pub use std::sync::Mutex;\npub use std::thread;\n");
        assert!(v.is_empty(), "facade is the sanctioned home: {v:?}");
    }

    #[test]
    fn determinism_waiver_covers_sync_import() {
        let v = run(
            "// DETERMINISM: global cache registry, keyed access only.\nuse std::sync::Mutex;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
