//! Token-tree lexer for the static-analysis passes.
//!
//! One pass over the source produces two coordinated views:
//!
//! - a flat **token stream** ([`Token`]) with matched delimiters
//!   ([`SourceFile::pair`] maps every `(`/`[`/`{` to its closer and back),
//!   which is what the structural passes (determinism, lock-order,
//!   atomic-pairing, model-coverage) walk; and
//! - a per-line **code/comment projection** ([`LexedLine`]) with literal
//!   contents blanked out and comment text retained, which the word-level
//!   rules (SAFETY/PANICS waivers, `Ordering::Relaxed`) scan.
//!
//! The lexer handles the constructs a per-line regex cannot: nested block
//! comments, raw strings with hash fences (`r##"…"##`, `br"…"`), byte and
//! escaped char literals vs lifetimes (`'a'` vs `'a`), multi-line string
//! literals, shebang lines, and attribute token groups. It is loss-tolerant
//! by design — unknown characters become punctuation tokens and lexing
//! never fails — because a linter must degrade gracefully on code newer
//! than itself.

/// Token classification. Literal tokens carry no content (the passes never
/// need it; blanking it keeps strings from triggering word rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a`-style lifetime (including `'static`).
    Lifetime,
    /// String literal of any flavor (plain/raw/byte, single or multi line).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (suffix glued on: `1_000u64` is one token).
    Num,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Token text. Empty for `Str`/`Char` (content deliberately dropped);
    /// the delimiter character for `Open`/`Close`.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        (self.kind == TokKind::Punct || self.kind == TokKind::Open || self.kind == TokKind::Close)
            && self.text.len() == 1
            && self.text.as_bytes()[0] as char == c
    }
}

/// One source line after lexing: `code` has comments and literal contents
/// blanked out (literal delimiters survive, contents become spaces);
/// `comment` holds the comment text that was removed from this line.
#[derive(Debug, Default, Clone)]
pub struct LexedLine {
    pub code: String,
    pub comment: String,
}

/// A lexed file: the flat token stream plus the per-line projection.
#[derive(Debug, Default)]
pub struct SourceFile {
    pub tokens: Vec<Token>,
    pub lines: Vec<LexedLine>,
    /// `pair[i]` is the index of the delimiter matching token `i`
    /// (`Open`→`Close` and `Close`→`Open`); `usize::MAX` for non-delimiter
    /// tokens and unbalanced delimiters.
    pub pair: Vec<usize>,
}

impl SourceFile {
    /// Index of the matching delimiter, if `i` is a matched Open/Close.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.pair.get(i).copied().filter(|&p| p != usize::MAX)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `r"`, `r#"`, `br"`, `br#"`, `cr"` … : prefix letters, at least one of
/// them `r`, then optional hash fence, then the opening quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    if !chars[i..j].contains(&'r') {
        return None;
    }
    let mut hashes = 0u32;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < chars.len() && chars[j] == '"' {
        Some((j, hashes))
    } else {
        None
    }
}

/// Lex `src` into tokens and per-line code/comment views. Never fails.
pub fn lex(src: &str) -> SourceFile {
    let chars: Vec<char> = src.chars().collect();
    // `lines()` ignores a trailing newline, so a file ending in `\n` does
    // not grow a phantom empty line (nothing ever tokenizes there).
    let n_lines = src.split('\n').count().min(src.lines().count().max(1));
    let mut out = SourceFile {
        tokens: Vec::new(),
        lines: vec![LexedLine::default(); n_lines],
        pair: Vec::new(),
    };
    let mut i = 0;
    let mut line = 0; // 0-based while lexing; tokens store 1-based

    // Shebang: a `#!` first line that is not the start of an inner
    // attribute (`#![…]`) is skipped as a comment.
    if chars.first() == Some(&'#') && chars.get(1) == Some(&'!') && chars.get(2) != Some(&'[') {
        while i < chars.len() && chars[i] != '\n' {
            out.lines[0].comment.push(chars[i]);
            i += 1;
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                out.lines[line].comment.push(chars[i]);
                i += 1;
            }
            continue;
        }
        // Nested block comment (may span lines).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0u32;
            while i < chars.len() {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.lines[line].comment.push_str("/*");
                    i += 2;
                    continue;
                }
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.lines[line].comment.push_str("*/");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                out.lines[line].comment.push(chars[i]);
                i += 1;
            }
            continue;
        }
        // Identifier / keyword — or a raw-string / byte-string prefix.
        if is_ident_start(c) {
            if matches!(c, 'r' | 'b' | 'c') {
                if let Some((quote, hashes)) = raw_string_start(&chars, i) {
                    // Prefix letters + fence land in code; contents blank.
                    for &p in &chars[i..quote] {
                        out.lines[line].code.push(p);
                    }
                    out.lines[line].code.push('"');
                    let tok_line = line + 1;
                    i = quote + 1;
                    loop {
                        if i >= chars.len() {
                            break;
                        }
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"'
                            && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                        {
                            out.lines[line].code.push('"');
                            i += 1 + hashes as usize;
                            break;
                        }
                        out.lines[line].code.push(' ');
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                // Byte string `b"…"` (no `r`): delegate to the string arm
                // below by emitting the prefix as part of the literal.
                if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    out.lines[line].code.push('b');
                    i += 1;
                    lex_plain_string(&chars, &mut i, &mut line, &mut out);
                    continue;
                }
                // Byte char `b'x'`.
                if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    out.lines[line].code.push('b');
                    i += 1;
                    lex_char_or_lifetime(&chars, &mut i, &mut line, &mut out, true);
                    continue;
                }
            }
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                out.lines[line].code.push(chars[i]);
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token { kind: TokKind::Ident, text, line: line + 1 });
            continue;
        }
        // Number (suffixes glue on; `.` stays separate so `1..n` lexes sanely).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                out.lines[line].code.push(chars[i]);
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token { kind: TokKind::Num, text, line: line + 1 });
            continue;
        }
        // String literal.
        if c == '"' {
            lex_plain_string(&chars, &mut i, &mut line, &mut out);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            lex_char_or_lifetime(&chars, &mut i, &mut line, &mut out, false);
            continue;
        }
        // Delimiters and punctuation.
        let kind = match c {
            '(' | '[' | '{' => TokKind::Open,
            ')' | ']' | '}' => TokKind::Close,
            _ => TokKind::Punct,
        };
        if !c.is_whitespace() {
            out.tokens.push(Token { kind, text: c.to_string(), line: line + 1 });
        }
        out.lines[line].code.push(c);
        i += 1;
    }

    // Match delimiters. Mismatched kinds or leftovers stay MAX — a linter
    // must not panic on a file mid-edit.
    out.pair = vec![usize::MAX; out.tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (t, tok) in out.tokens.iter().enumerate() {
        match tok.kind {
            TokKind::Open => stack.push(t),
            TokKind::Close => {
                if let Some(o) = stack.pop() {
                    let matches = matches!(
                        (out.tokens[o].text.as_str(), tok.text.as_str()),
                        ("(", ")") | ("[", "]") | ("{", "}")
                    );
                    if matches {
                        out.pair[o] = t;
                        out.pair[t] = o;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Plain (possibly multi-line) string literal starting at `chars[*i] == '"'`.
fn lex_plain_string(chars: &[char], i: &mut usize, line: &mut usize, out: &mut SourceFile) {
    let tok_line = *line + 1;
    out.lines[*line].code.push('"');
    *i += 1;
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                // Skip the escaped char (which may itself be a newline for
                // line-continuation escapes).
                if chars.get(*i + 1) == Some(&'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            '"' => {
                out.lines[*line].code.push('"');
                *i += 1;
                break;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => {
                out.lines[*line].code.push(' ');
                *i += 1;
            }
        }
    }
    out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line: tok_line });
}

/// `'x'`, `'\n'`, `'\u{1F600}'` char literals vs `'a` / `'static` lifetimes.
/// `byte` is true when called for the payload of a `b'…'` literal.
fn lex_char_or_lifetime(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    out: &mut SourceFile,
    byte: bool,
) {
    let tok_line = *line + 1;
    debug_assert_eq!(chars[*i], '\'');
    let next = chars.get(*i + 1).copied();
    let is_char = byte
        || match next {
            Some('\\') => true,
            Some(c2) if is_ident_start(c2) => {
                // `'a'` is a char literal, `'a` (no closing quote) a
                // lifetime. Look past the identifier run.
                let mut j = *i + 2;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                // Single ident char followed by `'` → char literal.
                j == *i + 2 && chars.get(j) == Some(&'\'')
            }
            Some(_) => true, // `'(' `, `'1'`, `'"'` …
            None => false,
        };
    if !is_char {
        // Lifetime.
        out.lines[*line].code.push('\'');
        *i += 1;
        let start = *i;
        while *i < chars.len() && is_ident_continue(chars[*i]) {
            out.lines[*line].code.push(chars[*i]);
            *i += 1;
        }
        let text: String = chars[start..*i].iter().collect();
        out.tokens.push(Token { kind: TokKind::Lifetime, text, line: tok_line });
        return;
    }
    // Char literal: blank contents, keep quotes.
    out.lines[*line].code.push('\'');
    *i += 1;
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                out.lines[*line].code.push(' ');
                *i += 2;
            }
            '\'' => {
                out.lines[*line].code.push('\'');
                *i += 1;
                break;
            }
            '\n' => {
                // Unterminated char literal — bail at end of line.
                *line += 1;
                *i += 1;
                break;
            }
            _ => {
                out.lines[*line].code.push(' ');
                *i += 1;
            }
        }
    }
    out.tokens.push(Token { kind: TokKind::Char, text: String::new(), line: tok_line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> String {
        lex(src).lines.iter().map(|l| l.code.clone() + "\n").collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let sf = lex("let s = \"unsafe .unwrap()\"; // Ordering::Relaxed");
        assert!(!sf.lines[0].code.contains("unsafe"));
        assert!(!sf.lines[0].code.contains("unwrap"));
        assert!(!sf.lines[0].code.contains("Relaxed"));
        assert!(sf.lines[0].comment.contains("Relaxed"));
        let idents: Vec<&str> = sf
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let src = "let r = r#\"unsafe { x.unwrap() }\"#;\n/* outer /* unsafe */ still comment */ let x = 1;";
        let sf = lex(src);
        assert!(!sf.lines[0].code.contains("unwrap"), "{}", sf.lines[0].code);
        assert!(!sf.lines[1].code.contains("unsafe"), "{}", sf.lines[1].code);
        assert!(sf.lines[1].code.contains("let x = 1;"), "{}", sf.lines[1].code);
    }

    #[test]
    fn raw_string_with_two_hashes_and_inner_fence() {
        let src = "let r = r##\"has \"# inside\"##; let y = 2;";
        let c = code(src);
        assert!(!c.contains("inside"), "{c}");
        assert!(c.contains("let y = 2;"), "{c}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let sf = lex("fn f<'a>(c: char) -> bool { c == '\"' || c == '\\'' }");
        assert!(sf.lines[0].code.contains("fn f<'a>"), "{}", sf.lines[0].code);
        assert!(sf.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(sf.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char_literal() {
        let sf = lex("fn f(x: &'static str) -> &'static str { x }");
        assert_eq!(sf.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert!(sf.tokens.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn shebang_line_is_comment() {
        let sf = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert!(sf.lines[0].code.is_empty());
        assert!(sf.lines[0].comment.contains("env"));
        assert!(sf.tokens.iter().any(|t| t.is_ident("main")));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let sf = lex("#![forbid(unsafe_code)]\n");
        assert!(sf.lines[0].code.contains("#![forbid(unsafe_code)]"));
    }

    #[test]
    fn delimiters_pair_up() {
        let sf = lex("fn f(a: [u8; 4]) { g(a[0]); }");
        for (t, tok) in sf.tokens.iter().enumerate() {
            if tok.kind == TokKind::Open {
                let m = sf.matching(t).expect("unmatched open");
                assert_eq!(sf.tokens[m].kind, TokKind::Close);
                assert_eq!(sf.matching(m), Some(t));
            }
        }
    }

    #[test]
    fn multiline_string_blanks_every_line() {
        let src = "let s = \"first unsafe\nsecond .unwrap()\";\nlet t = 3;";
        let c = code(src);
        assert!(!c.contains("unsafe"), "{c}");
        assert!(!c.contains("unwrap"), "{c}");
        assert!(c.contains("let t = 3;"), "{c}");
    }

    #[test]
    fn token_lines_are_one_based_and_correct() {
        let sf = lex("a\nb\n\nc");
        let lines: Vec<(String, usize)> =
            sf.tokens.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)], "{lines:?}");
    }

    #[test]
    fn byte_char_and_byte_string() {
        let sf = lex("let a = b'x'; let s = b\"unsafe\";");
        assert!(!sf.lines[0].code.contains("unsafe"));
        assert_eq!(sf.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(sf.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn unbalanced_delimiters_do_not_panic() {
        let sf = lex("fn f( { ) ]");
        assert!(!sf.tokens.is_empty());
    }
}
