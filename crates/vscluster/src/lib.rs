//! # vscluster — multi-node cluster extension
//!
//! The paper's future work (§6): "it could be convenient to adapt our
//! virtual screening method to more complex systems comprising several
//! computational nodes working together with the message-passing paradigm,
//! and each node with several computational components".
//!
//! This crate implements that extension over the simulated substrate:
//!
//! - [`net`] — a latency/bandwidth message-cost model (the MPI analog);
//! - [`cluster`] — [`cluster::SimCluster`]: several heterogeneous
//!   [`gpusim::SimNode`]s joined by an interconnect, plus the library
//!   screening driver that distributes ligand *jobs* across nodes
//!   (dynamic earliest-finish assignment, the cluster-level version of
//!   the paper's job scheduling) and accounts communication costs;
//! - [`library`] — synthetic ligand-library generation for
//!   screening-campaign workloads.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod crossdock;
pub mod faults;
pub mod library;
pub mod net;

pub use cluster::{ClusterReport, SimCluster};
pub use crossdock::{schedule_cross_docking, CrossDockReport, ReceptorTarget};
pub use faults::{screen_library_faulty, CampaignSpec, FaultPlan, FaultReport};
pub use library::{synthetic_library, LigandJob};
pub use net::NetModel;
