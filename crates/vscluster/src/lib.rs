//! # vscluster — multi-node cluster extension
//!
//! The paper's future work (§6): "it could be convenient to adapt our
//! virtual screening method to more complex systems comprising several
//! computational nodes working together with the message-passing paradigm,
//! and each node with several computational components".
//!
//! This crate implements that extension over the simulated substrate as a
//! **multi-tenant campaign service**:
//!
//! - [`service`] — the single submission API:
//!   [`Service::submit`](service::Service::submit) takes a
//!   [`Campaign`](service::Campaign) (library screen, fault-injected
//!   screen, or L×R cross-docking matrix — the three shapes that used to
//!   be separate entry points),
//!   [`Service::drain`](service::Service::drain) runs the bounded queue
//!   to quiescence and returns one unified
//!   [`CampaignReport`](service::CampaignReport) with queue-latency
//!   percentiles and fleet utilization. Admission control rejects when the
//!   queue is full (an interactive-only reserve keeps re-docks
//!   responsive), classes drain weighted-fair, duplicates are served from
//!   a keyed results cache, and nodes may join/leave mid-campaign;
//! - [`admission`] — the concurrency cores behind the service (bounded
//!   admission gate, exactly-once completion board, publish-once results
//!   cache), exhaustively model-checked under the `vscheck-model` feature;
//! - [`traffic`] — deterministic bursty traffic generation for service
//!   studies;
//! - [`net`] — a latency/bandwidth message-cost model (the MPI analog);
//! - [`cluster`] — [`cluster::SimCluster`]: the node pool the service
//!   runs over;
//! - [`library`] — synthetic ligand-library generation;
//! - [`faults`] / [`crossdock`] — degradation plans and receptor targets
//!   consumed by the corresponding campaign kinds.
#![forbid(unsafe_code)]

pub mod admission;
pub mod cluster;
pub mod crossdock;
pub mod faults;
pub mod library;
pub mod net;
pub mod service;
pub(crate) mod sync;
pub mod traffic;

pub use admission::{AdmissionGate, CacheKey, CachedResult, CompletionBoard, ResultsCache};
pub use cluster::SimCluster;
pub use crossdock::ReceptorTarget;
pub use faults::FaultPlan;
pub use library::{synthetic_library, LigandJob};
pub use net::NetModel;
pub use service::{
    Campaign, CampaignKind, CampaignReport, CampaignStats, JobHandle, JobOutcome, Priority,
    ScalePlan, Service, ServiceConfig,
};
pub use traffic::{bursty_traffic, TrafficConfig};
