//! Fault and straggler injection.
//!
//! Production clusters degrade: thermal throttling, contention, failing
//! fans. The paper's dynamic job assignment is motivated exactly by such
//! run-time variability ("the underlying GPU each metaheuristic instance
//! runs on ... is actually unknown at compile-time", §3.3). This module
//! injects per-node slowdowns and compares *static* (plan by nominal
//! speeds, ignore reality) against *dynamic* (observe actual finish times)
//! job scheduling under them.

use crate::cluster::SimCluster;
use crate::library::LigandJob;
use serde::{Deserialize, Serialize};
use vsched::{schedule_trace, schedule_trace_faulty, Strategy};
use vscreen::trace::synthetic_trace;
use vstrace::{Event, Trace};

/// A degradation plan: per-node compute slowdown factors (1.0 = healthy;
/// 3.0 = node runs 3× slower; `f64::INFINITY` = node effectively dead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub slowdowns: Vec<f64>,
}

impl FaultPlan {
    /// All nodes healthy.
    pub fn healthy(n_nodes: usize) -> FaultPlan {
        FaultPlan { slowdowns: vec![1.0; n_nodes] }
    }

    /// One straggler: node `victim` runs `factor`× slower.
    pub fn straggler(n_nodes: usize, victim: usize, factor: f64) -> FaultPlan {
        assert!(victim < n_nodes, "victim out of range");
        assert!(factor >= 1.0, "slowdown factor must be ≥ 1");
        let mut slowdowns = vec![1.0; n_nodes];
        slowdowns[victim] = factor;
        FaultPlan { slowdowns }
    }

    pub fn factor(&self, node: usize) -> f64 {
        self.slowdowns[node]
    }
}

/// Outcome of a faulty campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultReport {
    pub makespan: f64,
    pub node_times: Vec<f64>,
    pub assignment: Vec<usize>,
}

/// Declarative description of one faulty campaign, consumed by
/// [`screen_library_faulty`] — the single entry point that replaced the
/// positional-argument `screen_library_faulty` / `_traced` pair.
pub struct CampaignSpec<'a> {
    pub receptor_atoms: usize,
    pub n_spots: usize,
    pub jobs: &'a [LigandJob],
    pub strategy: Strategy,
    pub faults: &'a FaultPlan,
    /// `true`: jobs go (LPT order) to the node with the earliest
    /// *observed* finish time — degraded nodes naturally receive less
    /// work. `false`: the assignment is fixed up front from *nominal*
    /// (healthy) cost estimates, as a static partitioner would;
    /// degradation is only felt at execution time.
    pub dynamic: bool,
    /// `None` (default): a node's degradation scales its whole nominal
    /// execution time — the coarse node-level model. `Some(g)`: the fault
    /// lives *inside* each degraded node — GPU lane `g` slows by the
    /// node's factor after the warm-up froze its weight — and node costs
    /// come from the intra-node faulty replay
    /// ([`vsched::schedule_trace_faulty`]). Under
    /// [`Strategy::WorkSteal`] the degraded node's healthy devices then
    /// steal the victim lane's stranded chunks, observable as device-lane
    /// `JobMigrated` events on the campaign trace.
    pub gpu_victim: Option<usize>,
    pub trace: Trace,
}

impl<'a> CampaignSpec<'a> {
    /// Campaign with static assignment, node-level degradation, no trace.
    pub fn new(
        receptor_atoms: usize,
        n_spots: usize,
        jobs: &'a [LigandJob],
        strategy: Strategy,
        faults: &'a FaultPlan,
    ) -> CampaignSpec<'a> {
        CampaignSpec {
            receptor_atoms,
            n_spots,
            jobs,
            strategy,
            faults,
            dynamic: false,
            gpu_victim: None,
            trace: Trace::disabled(),
        }
    }

    /// Assign jobs by observed finish times instead of the nominal plan.
    pub fn dynamic(mut self, dynamic: bool) -> Self {
        self.dynamic = dynamic;
        self
    }

    /// Model each degraded node's fault as GPU lane `g` slowing mid-run.
    pub fn gpu_victim(mut self, g: usize) -> Self {
        self.gpu_victim = Some(g);
        self
    }

    /// Attach a trace: a `FaultInjected` event per degraded node, a
    /// node-level `JobMigrated` event for every job the dynamic scheduler
    /// places differently than the nominal plan, and — with
    /// [`CampaignSpec::gpu_victim`] — the degraded nodes' intra-node
    /// events (device-lane `JobMigrated` steals under
    /// [`Strategy::WorkSteal`]).
    pub fn traced(mut self, trace: &Trace) -> Self {
        self.trace = trace.clone();
        self
    }
}

/// Run a library campaign under a fault plan (see [`CampaignSpec`] for the
/// scheduling and degradation knobs).
pub fn screen_library_faulty(cluster: &SimCluster, spec: &CampaignSpec<'_>) -> FaultReport {
    let CampaignSpec {
        receptor_atoms, n_spots, jobs, strategy, faults, dynamic, gpu_victim, ..
    } = *spec;
    let trace = &spec.trace;
    assert_eq!(faults.slowdowns.len(), cluster.node_count(), "fault plan size mismatch");
    assert!(faults.slowdowns.iter().all(|&f| f >= 1.0), "factors must be ≥ 1");
    if let Some(g) = gpu_victim {
        assert!(
            cluster.nodes().iter().all(|nd| g < nd.gpus().len()),
            "gpu_victim {g} out of range for some node"
        );
        assert!(
            faults.slowdowns.iter().all(|f| f.is_finite()),
            "gpu_victim needs finite factors (the lane keeps executing, slowly)"
        );
    }

    for (ni, &f) in faults.slowdowns.iter().enumerate() {
        if f > 1.0 {
            trace.emit(Event::FaultInjected { node: ni as u32, slowdown: f });
        }
    }

    let nominal_cost = |ni: usize, job: &LigandJob| -> f64 {
        let node = &cluster.nodes()[ni];
        let trace = synthetic_trace(&job.params, n_spots);
        schedule_trace(
            node.cpu(),
            node.gpus(),
            &trace,
            job.pairs_per_eval(receptor_atoms),
            strategy,
        )
        .makespan
    };

    // A degraded GPU keeps its nominal speed through the warm-up (its
    // Equation 1 weight is measured healthy) and slows at this batch — the
    // mid-run degradation the intra-node steal path exists to absorb.
    let onset = match strategy {
        Strategy::HeterogeneousSplit { warmup }
        | Strategy::AdaptiveSplit { warmup, .. }
        | Strategy::WorkSteal { warmup, .. } => warmup.iterations,
        _ => 0,
    };

    // True cost of running `job` on node `ni` under the active fault
    // model; `emit` controls whether the intra-node replay contributes
    // events to the campaign trace (only actually-executed placements do —
    // planning probes stay silent).
    let degraded_cost = |ni: usize, job: &LigandJob, emit: bool| -> f64 {
        let factor = faults.factor(ni);
        match gpu_victim {
            None => nominal_cost(ni, job) * factor,
            Some(g) => {
                let node = &cluster.nodes()[ni];
                let batches = synthetic_trace(&job.params, n_spots);
                let mut slowdowns = vec![1.0; node.gpus().len()];
                slowdowns[g] = factor;
                let silent = Trace::disabled();
                let events = if emit && factor > 1.0 { trace } else { &silent };
                schedule_trace_faulty(
                    node.cpu(),
                    node.gpus(),
                    &batches,
                    job.pairs_per_eval(receptor_atoms),
                    strategy,
                    &slowdowns,
                    onset,
                    events,
                )
                .makespan
            }
        }
    };

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&j| {
        std::cmp::Reverse(jobs[j].total_items(n_spots) * jobs[j].pairs_per_eval(receptor_atoms))
    });

    let n = cluster.node_count();

    // The static nominal plan: balance by *healthy* estimates, blind to
    // degradation. The static mode executes it; dynamic mode compares
    // against it to report migrations.
    let plan_static = || {
        let mut planned = vec![0.0f64; n];
        let mut assignment = vec![usize::MAX; jobs.len()];
        for &j in &order {
            let (ni, _) = planned
                .iter()
                .enumerate()
                // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("non-empty");
            planned[ni] += nominal_cost(ni, &jobs[j]);
            assignment[j] = ni;
        }
        assignment
    };

    let mut node_times = vec![0.0f64; n];
    let assignment = if dynamic {
        let mut assignment = vec![usize::MAX; jobs.len()];
        for &j in &order {
            let (ni, _) = node_times
                .iter()
                .enumerate()
                // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("non-empty");
            node_times[ni] += degraded_cost(ni, &jobs[j], true);
            assignment[j] = ni;
        }
        if trace.is_enabled() {
            for (j, (&to, &from)) in assignment.iter().zip(&plan_static()).enumerate() {
                if to != from {
                    trace.emit(Event::JobMigrated {
                        job: j as u32,
                        from_node: from as u32,
                        to_node: to as u32,
                    });
                }
            }
        }
        assignment
    } else {
        // Execute the static plan with the true (degraded) costs.
        let assignment = plan_static();
        for (j, &ni) in assignment.iter().enumerate() {
            node_times[ni] += degraded_cost(ni, &jobs[j], true);
        }
        assignment
    };

    let makespan = node_times.iter().cloned().fold(0.0, f64::max);
    FaultReport { makespan, node_times, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::synthetic_library;
    use crate::net::NetModel;
    use vscreen::platform;

    fn setup() -> (SimCluster, Vec<LigandJob>) {
        let cluster = SimCluster::uniform(3, NetModel::infiniband(), platform::hertz);
        let jobs = synthetic_library(24, &metaheur::m1(0.3), 5);
        (cluster, jobs)
    }

    fn spec<'a>(jobs: &'a [LigandJob], plan: &'a FaultPlan) -> CampaignSpec<'a> {
        CampaignSpec::new(3264, 16, jobs, Strategy::HomogeneousSplit, plan)
    }

    #[test]
    fn healthy_static_equals_dynamic() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::healthy(3);
        let d = screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true));
        let s = screen_library_faulty(&cluster, &spec(&jobs, &plan));
        assert!((d.makespan - s.makespan).abs() / d.makespan < 1e-9);
    }

    #[test]
    fn dynamic_absorbs_straggler() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let dynamic = screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true));
        let static_ = screen_library_faulty(&cluster, &spec(&jobs, &plan));
        assert!(
            dynamic.makespan < static_.makespan / 1.5,
            "dynamic {} should absorb the 4x straggler vs static {}",
            dynamic.makespan,
            static_.makespan
        );
        // The degraded node got fewer jobs under dynamic scheduling.
        let count = |r: &FaultReport| r.assignment.iter().filter(|&&n| n == 1).count();
        assert!(count(&dynamic) < count(&static_));
    }

    #[test]
    fn static_makespan_scales_with_straggler_factor() {
        let (cluster, jobs) = setup();
        let m = |f: f64| {
            let plan = FaultPlan::straggler(3, 0, f);
            screen_library_faulty(&cluster, &spec(&jobs, &plan)).makespan
        };
        let healthy = m(1.0);
        let slow = m(3.0);
        assert!((slow / healthy - 3.0).abs() < 0.5, "static suffers ~3x: {}", slow / healthy);
    }

    #[test]
    fn dead_node_starved_by_dynamic() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 2, 1e6);
        let r = screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true));
        let to_dead = r.assignment.iter().filter(|&&n| n == 2).count();
        // LPT gives the dead node at most its first pick before its clock
        // explodes past everyone else.
        assert!(to_dead <= 1, "dead node got {to_dead} jobs");
    }

    #[test]
    fn all_jobs_still_complete_under_faults() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 0, 10.0);
        for dynamic in [true, false] {
            let r = screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(dynamic));
            assert!(r.assignment.iter().all(|&n| n < 3));
            assert_eq!(r.assignment.len(), jobs.len());
        }
    }

    #[test]
    fn traced_straggler_emits_fault_and_migration_events() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let trace = Trace::new();
        let traced =
            screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true).traced(&trace));
        let data = trace.snapshot();
        let faults_seen: Vec<_> = data
            .payloads()
            .into_iter()
            .filter_map(|e| match e {
                Event::FaultInjected { node, slowdown } => Some((node, slowdown)),
                _ => None,
            })
            .collect();
        assert_eq!(faults_seen, vec![(1, 4.0)]);
        let migrations =
            data.payloads().into_iter().filter(|e| matches!(e, Event::JobMigrated { .. })).count();
        assert!(migrations > 0, "4x straggler under dynamic scheduling must move jobs");
        for e in data.payloads() {
            if let Event::JobMigrated { job, from_node, to_node } = e {
                assert_ne!(from_node, to_node);
                assert_eq!(traced.assignment[job as usize], to_node as usize);
            }
        }
        // Tracing must not perturb the schedule itself.
        let plain = screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true));
        assert_eq!(traced.assignment, plain.assignment);
        assert_eq!(traced.makespan, plain.makespan);
    }

    #[test]
    fn untraced_run_emits_nothing() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let trace = Trace::disabled();
        screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true).traced(&trace));
        assert!(trace.snapshot().is_empty());
    }

    /// Intra-node fault-model specs: generations big enough (128 spots ×
    /// population 64 = 8192 conformations) that the degraded node's deques
    /// hold many occupancy-floor chunks — granularity for lane steals.
    fn intra_spec<'a>(
        jobs: &'a [LigandJob],
        plan: &'a FaultPlan,
        strategy: Strategy,
    ) -> CampaignSpec<'a> {
        CampaignSpec::new(3264, 128, jobs, strategy, plan).gpu_victim(1)
    }

    fn worksteal() -> Strategy {
        Strategy::WorkSteal { warmup: vsched::WarmupConfig::default(), divisor: 2 }
    }

    #[test]
    fn gpu_victim_worksteal_steals_inside_degraded_node() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let trace = Trace::new();
        // Static node assignment: every JobMigrated on the trace is an
        // *intra-node* device-lane steal, not a node-level migration.
        screen_library_faulty(&cluster, &intra_spec(&jobs, &plan, worksteal()).traced(&trace));
        let data = trace.snapshot();
        let steals =
            data.payloads().into_iter().filter(|e| matches!(e, Event::JobMigrated { .. })).count();
        assert!(steals > 0, "degraded lane must shed chunks to the healthy lanes");
    }

    #[test]
    fn gpu_victim_worksteal_beats_frozen_split() {
        // The tentpole claim at cluster scope: with the fault inside the
        // node, the runtime's steals absorb what the frozen Percent split
        // cannot.
        let (cluster, jobs) = setup();
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let frozen = screen_library_faulty(
            &cluster,
            &intra_spec(
                &jobs,
                &plan,
                Strategy::HeterogeneousSplit { warmup: vsched::WarmupConfig::default() },
            ),
        );
        let stealing = screen_library_faulty(&cluster, &intra_spec(&jobs, &plan, worksteal()));
        assert!(
            stealing.makespan < frozen.makespan,
            "steals must absorb the lane fault: {} vs {}",
            stealing.makespan,
            frozen.makespan
        );
    }

    #[test]
    fn gpu_victim_healthy_matches_node_level_model() {
        // With every factor 1.0 the two fault models agree: no lane is
        // degraded, so the intra-node replay reduces to the nominal one.
        let (cluster, jobs) = setup();
        let plan = FaultPlan::healthy(3);
        let node_level = screen_library_faulty(&cluster, &spec(&jobs, &plan));
        let intra = screen_library_faulty(&cluster, &spec(&jobs, &plan).gpu_victim(1));
        assert!((node_level.makespan - intra.makespan).abs() < 1e-12 * node_level.makespan);
        assert_eq!(node_level.assignment, intra.assignment);
    }

    #[test]
    #[should_panic]
    fn gpu_victim_out_of_range_panics() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::healthy(3);
        screen_library_faulty(&cluster, &spec(&jobs, &plan).gpu_victim(9));
    }

    #[test]
    #[should_panic]
    fn gpu_victim_infinite_factor_panics() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan { slowdowns: vec![1.0, f64::INFINITY, 1.0] };
        screen_library_faulty(&cluster, &spec(&jobs, &plan).gpu_victim(0));
    }

    #[test]
    #[should_panic]
    fn plan_size_mismatch_panics() {
        let (cluster, jobs) = setup();
        let plan = FaultPlan::healthy(2);
        screen_library_faulty(&cluster, &spec(&jobs, &plan).dynamic(true));
    }

    #[test]
    #[should_panic]
    fn sub_unity_factor_panics() {
        FaultPlan::straggler(2, 0, 0.5);
    }
}
