//! Degradation plans for fault-injected campaigns.
//!
//! Production clusters degrade: thermal throttling, contention, failing
//! fans. The paper's dynamic job assignment is motivated exactly by such
//! run-time variability ("the underlying GPU each metaheuristic instance
//! runs on ... is actually unknown at compile-time", §3.3). A [`FaultPlan`]
//! describes per-node slowdowns; submit it with
//! [`crate::service::Campaign::faulty`] to compare *static* (plan by
//! nominal speeds, ignore reality) against *dynamic* (observe actual
//! finish times) job scheduling under degradation.

use serde::{Deserialize, Serialize};

/// A degradation plan: per-node compute slowdown factors (1.0 = healthy;
/// 3.0 = node runs 3× slower; `f64::INFINITY` = node effectively dead).
/// Indexed by the service's *initial* node ids; nodes joining later are
/// healthy by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub slowdowns: Vec<f64>,
}

impl FaultPlan {
    /// All nodes healthy.
    pub fn healthy(n_nodes: usize) -> FaultPlan {
        FaultPlan { slowdowns: vec![1.0; n_nodes] }
    }

    /// One straggler: node `victim` runs `factor`× slower.
    pub fn straggler(n_nodes: usize, victim: usize, factor: f64) -> FaultPlan {
        assert!(victim < n_nodes, "victim out of range");
        assert!(factor >= 1.0, "slowdown factor must be ≥ 1");
        let mut slowdowns = vec![1.0; n_nodes];
        slowdowns[victim] = factor;
        FaultPlan { slowdowns }
    }

    pub fn factor(&self, node: usize) -> f64 {
        self.slowdowns[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_is_all_ones() {
        let p = FaultPlan::healthy(3);
        assert_eq!(p.slowdowns, vec![1.0; 3]);
        assert_eq!(p.factor(2), 1.0);
    }

    #[test]
    fn straggler_plan_slows_exactly_one_node() {
        let p = FaultPlan::straggler(4, 1, 3.5);
        assert_eq!(p.factor(1), 3.5);
        assert_eq!(p.slowdowns.iter().filter(|&&f| f == 1.0).count(), 3);
    }

    #[test]
    #[should_panic]
    fn sub_unity_factor_panics() {
        FaultPlan::straggler(2, 0, 0.5);
    }

    #[test]
    #[should_panic]
    fn victim_out_of_range_panics() {
        FaultPlan::straggler(2, 2, 2.0);
    }
}
