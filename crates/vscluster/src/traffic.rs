//! Deterministic bursty traffic generation for campaign-service studies.
//!
//! A production screening service sees two tenant populations at once: a
//! few long bulk sweeps submitted early, and bursts of small interactive
//! re-docks arriving throughout the day — some of them duplicates of work
//! already done (the same analog re-docked from a different notebook).
//! [`bursty_traffic`] synthesizes that mix reproducibly from a seed, so
//! the campaign bench (`BENCH_campaign.json`) and the determinism tests
//! exercise admission control, weighted-fair drain, and the results cache
//! under one realistic arrival pattern.

use crate::library::synthetic_library;
use crate::service::Campaign;
use vsched::Strategy;
use vsmath::RngStream;

/// Shape of one synthetic traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Arrival window, seconds of virtual time.
    pub horizon_s: f64,
    /// Bulk sweeps, arriving in the first fifth of the horizon.
    pub bulk_campaigns: usize,
    /// Ligands per bulk sweep.
    pub bulk_jobs: usize,
    /// Interactive bursts spread over the horizon.
    pub bursts: usize,
    /// Interactive campaigns per burst.
    pub burst_size: usize,
    /// Ligands per interactive re-dock.
    pub interactive_jobs: usize,
    /// Fraction of interactive campaigns that duplicate an earlier one
    /// (same library, seed, and kernel — cache-key identical).
    pub duplicate_fraction: f64,
    /// Receptor shape shared by the mix.
    pub receptor_atoms: usize,
    pub n_spots: usize,
    /// Intra-node scheduling strategy of every campaign.
    pub strategy: Strategy,
    /// Metaheuristic workload scale (paper suite M1 at this fraction).
    pub scale: f64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            horizon_s: 10.0,
            bulk_campaigns: 2,
            bulk_jobs: 24,
            bursts: 4,
            burst_size: 3,
            interactive_jobs: 2,
            duplicate_fraction: 0.33,
            receptor_atoms: 3264,
            n_spots: 16,
            strategy: Strategy::HomogeneousSplit,
            scale: 0.2,
        }
    }
}

impl TrafficConfig {
    /// Total campaigns this config generates.
    pub fn campaign_count(&self) -> usize {
        self.bulk_campaigns + self.bursts * self.burst_size
    }
}

/// Generate the traffic mix: bulk sweeps early, interactive bursts
/// throughout, a configurable fraction of duplicates. Deterministic in
/// `(cfg, seed)`; returned sorted by arrival time.
pub fn bursty_traffic(cfg: &TrafficConfig, seed: u64) -> Vec<Campaign> {
    assert!(cfg.horizon_s > 0.0, "horizon must be positive");
    assert!((0.0..=1.0).contains(&cfg.duplicate_fraction), "duplicate fraction must be in [0, 1]");
    let params = metaheur::m1(cfg.scale);
    let mut rng = RngStream::derive(seed, TRAFFIC_STREAM);
    let mut out: Vec<Campaign> = Vec::with_capacity(cfg.campaign_count());

    // Bulk sweeps: distinct libraries, arriving in the first fifth so the
    // backlog is established before the interactive day begins.
    for b in 0..cfg.bulk_campaigns {
        let arrival = rng.uniform_range(0.0, cfg.horizon_s * 0.2);
        let lib_seed = seed.wrapping_add(1 + b as u64);
        let jobs = synthetic_library(cfg.bulk_jobs, &params, lib_seed);
        out.push(
            Campaign::library(cfg.receptor_atoms, cfg.n_spots, jobs, cfg.strategy)
                .seed(lib_seed)
                .at(arrival),
        );
    }

    // Interactive bursts: each burst has a center; its campaigns arrive
    // within a short jitter window around it. A duplicate re-submits an
    // earlier interactive campaign verbatim (same library seed → same
    // cache keys); originals get fresh seeds.
    let mut originals: Vec<u64> = Vec::new();
    for burst in 0..cfg.bursts {
        let center = rng.uniform_range(cfg.horizon_s * 0.1, cfg.horizon_s);
        for c in 0..cfg.burst_size {
            let arrival =
                (center + rng.uniform_range(0.0, cfg.horizon_s * 0.01)).min(cfg.horizon_s);
            let duplicate = !originals.is_empty() && rng.uniform() < cfg.duplicate_fraction;
            let lib_seed = if duplicate {
                originals[rng.index(originals.len())]
            } else {
                let s = seed ^ (0x1000 + (burst * cfg.burst_size + c) as u64);
                originals.push(s);
                s
            };
            let jobs = synthetic_library(cfg.interactive_jobs, &params, lib_seed);
            out.push(
                Campaign::library(cfg.receptor_atoms, cfg.n_spots, jobs, cfg.strategy)
                    .interactive()
                    .seed(lib_seed)
                    .at(arrival),
            );
        }
    }

    // PANICS: arrivals are finite by construction (uniform over a finite horizon).
    out.sort_by(|a, b| a.arrival_vt.partial_cmp(&b.arrival_vt).expect("finite arrivals"));
    out
}

/// Stream id of the traffic RNG (distinct from library generation).
const TRAFFIC_STREAM: u64 = 0x7AFF_1C00;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Priority;

    #[test]
    fn traffic_is_deterministic() {
        let cfg = TrafficConfig::default();
        let a = bursty_traffic(&cfg, 42);
        let b = bursty_traffic(&cfg, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_vt, y.arrival_vt);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.priority, y.priority);
        }
        let c = bursty_traffic(&cfg, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.arrival_vt != y.arrival_vt));
    }

    #[test]
    fn mix_has_both_classes_and_sorted_arrivals() {
        let cfg = TrafficConfig::default();
        let traffic = bursty_traffic(&cfg, 7);
        assert_eq!(traffic.len(), cfg.campaign_count());
        assert!(traffic.iter().any(|c| c.priority == Priority::Bulk));
        assert!(traffic.iter().any(|c| c.priority == Priority::Interactive));
        assert!(traffic.windows(2).all(|w| w[0].arrival_vt <= w[1].arrival_vt));
        assert!(traffic.iter().all(|c| (0.0..=cfg.horizon_s).contains(&c.arrival_vt)));
    }

    #[test]
    fn duplicates_share_seeds_when_requested() {
        let cfg = TrafficConfig {
            bursts: 8,
            burst_size: 4,
            duplicate_fraction: 0.5,
            ..TrafficConfig::default()
        };
        let traffic = bursty_traffic(&cfg, 11);
        let mut seeds: Vec<u64> = traffic
            .iter()
            .filter(|c| c.priority == Priority::Interactive)
            .map(|c| c.seed)
            .collect();
        let total = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(seeds.len() < total, "a 0.5 duplicate fraction must repeat some seeds");
    }

    #[test]
    fn zero_duplicate_fraction_yields_unique_interactive_seeds() {
        let cfg = TrafficConfig { duplicate_fraction: 0.0, ..TrafficConfig::default() };
        let traffic = bursty_traffic(&cfg, 3);
        let mut seeds: Vec<u64> = traffic
            .iter()
            .filter(|c| c.priority == Priority::Interactive)
            .map(|c| c.seed)
            .collect();
        let total = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), total);
    }
}
