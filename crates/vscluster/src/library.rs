//! Ligand-library workloads for screening campaigns.
//!
//! Virtual screening libraries hold "hundreds of thousands of ligands"
//! (§2.1); a cluster campaign screens each against the same receptor. A
//! [`LigandJob`] is the cluster scheduling unit: one ligand × one
//! metaheuristic execution over the receptor surface.

use metaheur::MetaheuristicParams;
use serde::{Deserialize, Serialize};
use vsmath::RngStream;

/// One ligand's screening job, reduced to the quantities the cost model
/// needs (the search trajectory itself is ligand-independent in shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LigandJob {
    pub id: usize,
    /// Atom count of this ligand (drives pair interactions per eval).
    pub ligand_atoms: usize,
    /// Serialized ligand size in bytes (atom records), the scatter payload.
    pub bytes: u64,
    /// The metaheuristic to run for this ligand.
    pub params: MetaheuristicParams,
}

impl LigandJob {
    /// Pair interactions per conformation evaluation against a receptor.
    pub fn pairs_per_eval(&self, receptor_atoms: usize) -> u64 {
        (self.ligand_atoms * receptor_atoms) as u64
    }

    /// Total conformations this job evaluates over `n_spots` spots.
    pub fn total_items(&self, n_spots: usize) -> u64 {
        self.params.evals_per_spot() * n_spots as u64
    }
}

/// Generate a deterministic synthetic library of `n` drug-like ligands with
/// atom counts in the 20–60 range typical of screening databases, all
/// running `params`.
pub fn synthetic_library(n: usize, params: &MetaheuristicParams, seed: u64) -> Vec<LigandJob> {
    let mut rng = RngStream::derive(seed, 0);
    (0..n)
        .map(|id| {
            let ligand_atoms = 20 + rng.index(41); // 20..=60
            LigandJob {
                id,
                ligand_atoms,
                // ~48 B per atom record (position + element + charge).
                bytes: ligand_atoms as u64 * 48,
                params: params.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_deterministic() {
        let p = metaheur::m1(0.1);
        let a = synthetic_library(20, &p, 5);
        let b = synthetic_library(20, &p, 5);
        assert_eq!(a, b);
        let c = synthetic_library(20, &p, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn ligand_sizes_in_drug_like_range() {
        let lib = synthetic_library(200, &metaheur::m1(0.1), 1);
        assert!(lib.iter().all(|j| (20..=60).contains(&j.ligand_atoms)));
        // Variety, not a constant.
        let first = lib[0].ligand_atoms;
        assert!(lib.iter().any(|j| j.ligand_atoms != first));
    }

    #[test]
    fn job_ids_sequential() {
        let lib = synthetic_library(5, &metaheur::m1(0.1), 1);
        for (i, j) in lib.iter().enumerate() {
            assert_eq!(j.id, i);
        }
    }

    #[test]
    fn workload_accessors() {
        let p = metaheur::m1(0.1);
        let j = LigandJob { id: 0, ligand_atoms: 30, bytes: 1440, params: p.clone() };
        assert_eq!(j.pairs_per_eval(1000), 30_000);
        assert_eq!(j.total_items(4), p.evals_per_spot() * 4);
    }
}
