//! Synchronization facade for the campaign-service protocol cores.
//!
//! Normal builds re-export `std` types verbatim — a zero-cost pure alias,
//! so the production service is bit-for-bit the `std`-based
//! implementation. Under the `vscheck-model` feature the same names
//! resolve to the `vscheck` instrumented primitives, turning every sync
//! operation in [`crate::admission`] into a scheduler choice point so the
//! `model_*` tests can exhaustively explore interleavings (DESIGN.md §9,
//! §13).

#[cfg(not(feature = "vscheck-model"))]
pub(crate) use std::sync::Mutex;
#[cfg(feature = "vscheck-model")]
pub(crate) use vscheck::sync::Mutex;

#[cfg(all(test, feature = "vscheck-model"))]
pub(crate) mod thread {
    pub(crate) use vscheck::thread::Builder;
}

pub(crate) mod atomic {
    #[cfg(not(feature = "vscheck-model"))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64};
    #[cfg(feature = "vscheck-model")]
    pub(crate) use vscheck::sync::atomic::{AtomicBool, AtomicU64};
    // The vscheck atomics take `std` orderings (and collapse them to
    // SeqCst), so `Ordering` aliases `std` in both configurations.
    pub(crate) use std::sync::atomic::Ordering;
}
