//! Concurrency cores of the campaign service: admission gate, results
//! cache, exactly-once completion board.
//!
//! The virtual-time [`crate::service::Service`] drives these structures
//! from one thread, but they are written as real concurrent protocols
//! against the [`crate::sync`] facade: a production deployment would have
//! many submitter threads racing one drain loop, and the guarantees the
//! service's report depends on — occupancy never exceeds capacity, an
//! admitted job is never lost, a job never completes twice after a node
//! leaves, a cache key never resolves to a different value than the one
//! first published — are exactly the properties the `model_*` suite at the
//! bottom of this file explores exhaustively under the `vscheck-model`
//! feature (DESIGN.md §13).

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Key of one per-ligand docking result: everything that determines the
/// outcome of the computation. Two submissions with equal keys are the
/// same work, so the second may be served from the cache; any differing
/// component (receptor geometry, ligand identity/parameters, RNG seed, or
/// scoring kernel) changes the key and can never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Hash of the receptor side: atom count, surface spots (and target
    /// name for cross-docking).
    pub receptor: u64,
    /// Hash of the ligand side: ligand id, atom count, payload bytes and
    /// metaheuristic parameters.
    pub ligand: u64,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Hash of the scoring/scheduling kernel configuration.
    pub kernel: u64,
}

/// The cached outcome of one per-ligand job (virtual-time quantities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedResult {
    /// Device compute time the original (cold) execution paid.
    pub compute_s: f64,
    /// Virtual time the result became available; a duplicate arriving
    /// earlier than this must recompute (the original is still in flight).
    pub ready_vt: f64,
}

/// FNV-1a over a stream of `u64` words — the deterministic hash the cache
/// key components are built from (stable across runs and platforms, unlike
/// `std::hash::RandomState`).
pub fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Hash a string into the same FNV-1a stream (for kernel labels and
/// receptor names).
pub fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Bounded admission counter: the front door of the campaign service.
///
/// Occupancy lives in a single `AtomicU64`; [`AdmissionGate::try_admit`]
/// is a CAS loop that either reserves `n` slots or rejects without side
/// effects, so concurrent submitters can never overshoot `capacity`. A
/// headroom of `interactive_reserve` slots is admissible only by
/// interactive submissions, keeping re-dock latency bounded while bulk
/// sweeps saturate the rest of the queue.
pub struct AdmissionGate {
    occupancy: AtomicU64,
    capacity: u64,
    interactive_reserve: u64,
}

impl AdmissionGate {
    /// Gate with `capacity` total slots, `interactive_reserve` of which
    /// only interactive submissions may claim.
    ///
    /// # Panics
    /// Panics if the reserve exceeds the capacity.
    pub fn new(capacity: usize, interactive_reserve: usize) -> AdmissionGate {
        assert!(interactive_reserve <= capacity, "reserve exceeds capacity");
        AdmissionGate {
            occupancy: AtomicU64::new(0),
            capacity: capacity as u64,
            interactive_reserve: interactive_reserve as u64,
        }
    }

    /// Reserve `n` queue slots for one submission. Returns `false` (no
    /// side effects) when the submission's admissible bound is exceeded:
    /// `capacity` for interactive traffic, `capacity - reserve` for bulk.
    pub fn try_admit(&self, n: usize, interactive: bool) -> bool {
        let n = n as u64;
        let bound =
            if interactive { self.capacity } else { self.capacity - self.interactive_reserve };
        let mut cur = self.occupancy.load(Ordering::Acquire);
        loop {
            if cur + n > bound {
                return false;
            }
            match self.occupancy.compare_exchange(cur, cur + n, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Release `n` slots after their jobs were dispatched to a node.
    ///
    /// # Panics
    /// Panics if more slots are released than were admitted (a protocol
    /// bug: a job completed that was never admitted).
    pub fn release(&self, n: usize) {
        let prev = self.occupancy.fetch_sub(n as u64, Ordering::AcqRel);
        assert!(prev >= n as u64, "released {n} slots with only {prev} admitted");
    }

    /// Currently admitted-but-undispatched slots.
    pub fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::Acquire) as usize
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }
}

/// Exactly-once completion latches, one per job.
///
/// When a node leaves mid-campaign its in-flight jobs are requeued; the
/// original execution and the requeued one can then race to deliver the
/// same job id. [`CompletionBoard::try_complete`] is an atomic swap that
/// lets exactly one delivery win, so the report never double-counts and
/// never loses a job.
pub struct CompletionBoard {
    done: Vec<AtomicBool>,
}

impl CompletionBoard {
    /// Board for `jobs` job ids, all incomplete.
    pub fn new(jobs: usize) -> CompletionBoard {
        CompletionBoard { done: (0..jobs).map(|_| AtomicBool::new(false)).collect() }
    }

    /// Claim the completion of `job`. The first caller gets `true`; every
    /// later (duplicate) delivery gets `false` and must discard its result.
    pub fn try_complete(&self, job: usize) -> bool {
        !self.done[job].swap(true, Ordering::AcqRel)
    }

    /// Whether `job` has completed.
    pub fn is_complete(&self, job: usize) -> bool {
        self.done[job].load(Ordering::Acquire)
    }

    /// Number of completed jobs (quiescent use).
    pub fn completed(&self) -> usize {
        self.done.iter().filter(|d| d.load(Ordering::Acquire)).count()
    }

    /// Total job ids on the board.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether the board tracks no jobs.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

/// Keyed results cache with publish-once semantics and FIFO eviction.
///
/// A key's value is immutable once published: a racing second publish for
/// the same key is rejected, so a reader can never observe a key "change
/// value" — the staleness freedom the model suite checks. Eviction removes
/// whole entries (a later lookup misses and recomputes); it never mutates
/// them in place.
pub struct ResultsCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: BTreeMap<CacheKey, CachedResult>,
    fifo: VecDeque<CacheKey>,
}

impl ResultsCache {
    /// Cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> ResultsCache {
        ResultsCache {
            inner: Mutex::new(CacheInner { map: BTreeMap::new(), fifo: VecDeque::new() }),
            capacity,
        }
    }

    /// Look `key` up. A hit is only returned once the entry's result is
    /// ready by `at_vt` — a duplicate arriving while the original is still
    /// in flight recomputes rather than reading the future.
    pub fn lookup(&self, key: &CacheKey, at_vt: f64) -> Option<CachedResult> {
        // PANICS: a poisoned lock means a prior panic mid-publish; propagating is correct.
        let inner = self.inner.lock().expect("results cache poisoned");
        inner.map.get(key).filter(|e| e.ready_vt <= at_vt).copied()
    }

    /// Publish `key -> value`. The first publish wins and returns `true`;
    /// a duplicate publish (same key, possibly racing) is rejected with
    /// `false` and leaves the stored value untouched.
    pub fn publish(&self, key: CacheKey, value: CachedResult) -> bool {
        if self.capacity == 0 {
            return false;
        }
        // PANICS: a poisoned lock means a prior panic mid-publish; propagating is correct.
        let mut inner = self.inner.lock().expect("results cache poisoned");
        if inner.map.contains_key(&key) {
            return false;
        }
        if inner.fifo.len() == self.capacity {
            if let Some(old) = inner.fifo.pop_front() {
                inner.map.remove(&old);
            }
        }
        inner.map.insert(key, value);
        inner.fifo.push_back(key);
        true
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        // PANICS: a poisoned lock means a prior panic mid-publish; propagating is correct.
        self.inner.lock().expect("results cache poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey { receptor: 1, ligand: n, seed: 7, kernel: 3 }
    }

    #[test]
    fn gate_admits_to_capacity_and_releases() {
        let g = AdmissionGate::new(10, 0);
        assert!(g.try_admit(6, false));
        assert!(g.try_admit(4, false));
        assert!(!g.try_admit(1, false), "over capacity");
        g.release(5);
        assert!(g.try_admit(5, false));
        assert_eq!(g.occupancy(), 10);
    }

    #[test]
    fn interactive_reserve_is_interactive_only() {
        let g = AdmissionGate::new(10, 4);
        assert!(g.try_admit(6, false));
        assert!(!g.try_admit(1, false), "bulk capped at capacity - reserve");
        assert!(g.try_admit(3, true), "interactive may use the reserve");
        assert!(!g.try_admit(2, true), "but not beyond total capacity");
        assert!(g.try_admit(1, true));
    }

    #[test]
    #[should_panic]
    fn over_release_panics() {
        let g = AdmissionGate::new(4, 0);
        assert!(g.try_admit(2, false));
        g.release(3);
    }

    #[test]
    #[should_panic]
    fn reserve_over_capacity_panics() {
        AdmissionGate::new(2, 3);
    }

    #[test]
    fn completion_board_is_exactly_once() {
        let b = CompletionBoard::new(3);
        assert!(b.try_complete(1));
        assert!(!b.try_complete(1), "duplicate delivery rejected");
        assert!(b.is_complete(1));
        assert!(!b.is_complete(0));
        assert_eq!(b.completed(), 1);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn cache_publish_once_and_ready_gating() {
        let c = ResultsCache::new(8);
        assert!(c.publish(key(1), CachedResult { compute_s: 2.0, ready_vt: 5.0 }));
        assert!(!c.publish(key(1), CachedResult { compute_s: 9.0, ready_vt: 0.0 }));
        assert_eq!(c.lookup(&key(1), 4.0), None, "not ready yet");
        let hit = c.lookup(&key(1), 5.0).expect("ready");
        assert_eq!(hit.compute_s, 2.0, "first publish wins");
        assert_eq!(c.lookup(&key(2), 10.0), None);
    }

    #[test]
    fn cache_evicts_fifo_and_never_aliases() {
        let c = ResultsCache::new(2);
        for n in 0..3u64 {
            assert!(c.publish(key(n), CachedResult { compute_s: n as f64, ready_vt: 0.0 }));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&key(0), 1.0), None, "oldest evicted");
        assert_eq!(c.lookup(&key(1), 1.0).map(|e| e.compute_s), Some(1.0));
        assert_eq!(c.lookup(&key(2), 1.0).map(|e| e.compute_s), Some(2.0));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultsCache::new(0);
        assert!(!c.publish(key(1), CachedResult { compute_s: 1.0, ready_vt: 0.0 }));
        assert!(c.is_empty());
    }

    #[test]
    fn fnv_hashes_are_stable_and_distinct() {
        assert_eq!(fnv1a(&[1, 2, 3]), fnv1a(&[1, 2, 3]));
        assert_ne!(fnv1a(&[1, 2, 3]), fnv1a(&[3, 2, 1]));
        assert_eq!(fnv1a_str("fused"), fnv1a_str("fused"));
        assert_ne!(fnv1a_str("fused"), fnv1a_str("grid"));
    }
}

/// Exhaustive interleaving checks of the admission/backpressure protocol
/// under the `vscheck` model checker (run with
/// `cargo test -p vscluster --features vscheck-model model_`).
///
/// Invariants, each explored over every bounded interleaving:
/// - **occupancy never exceeds capacity** and **no admitted job is lost**
///   (admitted = dispatched + still queued, conserved);
/// - **no double-completion on node leave**: a requeued job racing its
///   original delivery completes exactly once;
/// - **the cache never goes stale**: a key's value is immutable after the
///   first publish, and every lookup observes either a miss or that value.
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use crate::sync::thread::Builder;
    use std::sync::Arc;
    use vscheck::{explore, Config};

    #[test]
    fn model_gate_never_exceeds_capacity_and_conserves_jobs() {
        let report = explore(Config::with_bound(2), || {
            let gate = Arc::new(AdmissionGate::new(3, 1));
            let admitted = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = [(2usize, false), (2, true), (1, false)]
                .into_iter()
                .map(|(n, interactive)| {
                    let gate = Arc::clone(&gate);
                    let admitted = Arc::clone(&admitted);
                    Builder::new()
                        .name("submitter".into())
                        .spawn(move || {
                            if gate.try_admit(n, interactive) {
                                assert!(
                                    gate.occupancy() <= gate.capacity(),
                                    "occupancy observed over capacity"
                                );
                                *admitted.lock().expect("admitted count poisoned") += n;
                            }
                        })
                        .expect("spawn submitter")
                })
                .collect();
            for h in handles {
                h.join().expect("submitter panicked");
            }
            // Conservation: everything admitted is still occupying its
            // slot (nothing dispatched yet), and within capacity.
            let total = *admitted.lock().expect("admitted count poisoned");
            assert_eq!(gate.occupancy(), total, "admitted slots lost or duplicated");
            assert!(total <= 3, "gate admitted past capacity: {total}");
            // Drain: releasing what was admitted empties the gate.
            gate.release(total);
            assert_eq!(gate.occupancy(), 0);
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
    }

    #[test]
    fn model_bulk_respects_interactive_reserve() {
        let report = explore(Config::with_bound(2), || {
            let gate = Arc::new(AdmissionGate::new(2, 1));
            let g2 = Arc::clone(&gate);
            let bulk = Builder::new()
                .name("bulk".into())
                .spawn(move || g2.try_admit(2, false))
                .expect("spawn bulk");
            let interactive_ok = gate.try_admit(1, true);
            let bulk_ok = bulk.join().expect("bulk panicked");
            // Bulk may take at most capacity - reserve = 1 slot, so its
            // 2-slot burst must fail under every interleaving, and the
            // 1-slot interactive must then always fit.
            assert!(!bulk_ok, "bulk claimed the interactive reserve");
            assert!(interactive_ok, "interactive starved below the reserve");
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_node_leave_requeue_completes_exactly_once() {
        let report = explore(Config::with_bound(2), || {
            let board = Arc::new(CompletionBoard::new(1));
            let deliveries = Arc::new(Mutex::new(Vec::new()));
            // The original node's delivery races the requeued re-execution
            // after a NodeLeft aborted it — both try to complete job 0.
            let handles: Vec<_> = ["original", "requeued"]
                .into_iter()
                .map(|who| {
                    let board = Arc::clone(&board);
                    let deliveries = Arc::clone(&deliveries);
                    Builder::new()
                        .name(who.into())
                        .spawn(move || {
                            if board.try_complete(0) {
                                deliveries.lock().expect("delivery log poisoned").push(who);
                            }
                        })
                        .expect("spawn deliverer")
                })
                .collect();
            for h in handles {
                h.join().expect("deliverer panicked");
            }
            let log = deliveries.lock().expect("delivery log poisoned");
            assert_eq!(log.len(), 1, "job must complete exactly once, got {:?}", &*log);
            assert!(board.is_complete(0), "job lost: neither delivery won");
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_cache_value_immutable_under_racing_publishes() {
        let report = explore(Config::with_bound(2), || {
            let cache = Arc::new(ResultsCache::new(4));
            let key = CacheKey { receptor: 1, ligand: 2, seed: 3, kernel: 4 };
            let handles: Vec<_> = [10.0f64, 20.0]
                .into_iter()
                .map(|compute_s| {
                    let cache = Arc::clone(&cache);
                    Builder::new()
                        .name("publisher".into())
                        .spawn(move || {
                            let won = cache.publish(key, CachedResult { compute_s, ready_vt: 0.0 });
                            // Whoever won, the stored value must already be
                            // one of the two candidates and never change.
                            let seen =
                                cache.lookup(&key, 1.0).expect("published key must be present");
                            assert!(
                                seen.compute_s == 10.0 || seen.compute_s == 20.0,
                                "torn or foreign value {seen:?}"
                            );
                            won
                        })
                        .expect("spawn publisher")
                })
                .collect();
            let wins: Vec<bool> =
                handles.into_iter().map(|h| h.join().expect("publisher panicked")).collect();
            assert_eq!(
                wins.iter().filter(|&&w| w).count(),
                1,
                "exactly one publish must win: {wins:?}"
            );
            // Quiescent: the winning value is stable across lookups.
            let a = cache.lookup(&key, 1.0).expect("present");
            let b = cache.lookup(&key, 1.0).expect("present");
            assert_eq!(a, b, "cache went stale between lookups");
        });
        report.assert_passed();
        assert!(report.complete);
    }
}
