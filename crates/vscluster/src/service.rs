//! The multi-tenant campaign service: one submission API over the whole
//! cluster.
//!
//! Earlier revisions exposed three parallel entry points —
//! `screen_library`, `screen_library_faulty`, `schedule_cross_docking` —
//! each with its own report type and its own scheduling loop. This module
//! collapses them onto a single deterministic virtual-time service:
//!
//! ```text
//! Service::submit(Campaign) -> JobHandle        (admission control)
//! Service::drain()          -> CampaignReport   (run to quiescence)
//! ```
//!
//! A [`Campaign`] is one tenant's request — a plain library screen, a
//! fault-injected screen, or an L×R cross-docking matrix — tagged with a
//! [`Priority`] class and a virtual arrival time. The service expands each
//! admitted campaign into per-ligand jobs, holds them in a bounded queue
//! guarded by [`crate::admission::AdmissionGate`] (backpressure: a full
//! queue rejects, with an interactive-only reserve so re-docks stay
//! responsive under bulk load), drains them weighted-fair across priority
//! classes onto the earliest-free node, and serves duplicate work from a
//! keyed [`crate::admission::ResultsCache`]. Nodes may join or leave
//! mid-campaign via [`ScalePlan`]; a leaving node's unfinished jobs are
//! requeued and complete elsewhere (generalizing the fault path's
//! straggler story to planned elasticity).
//!
//! Everything runs in virtual time: the same submissions with the same
//! seeds produce a bit-identical [`CampaignReport`].

use crate::admission::{
    fnv1a, fnv1a_str, AdmissionGate, CacheKey, CachedResult, CompletionBoard, ResultsCache,
};
use crate::cluster::SimCluster;
use crate::crossdock::ReceptorTarget;
use crate::faults::FaultPlan;
use crate::library::LigandJob;
use crate::net::NetModel;
use gpusim::SimNode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vsched::{schedule_trace, schedule_trace_drift, schedule_trace_faulty, SharedOracle, Strategy};
use vscreen::trace::synthetic_trace;
use vstrace::{Event, Trace};

/// Serialized result payload per job (best pose + score + provenance).
pub(crate) const RESULT_BYTES: u64 = 256;

/// Priority class of a submission. The drain loop serves classes
/// weighted-fair (see [`ServiceConfig::interactive_weight`]); admission
/// reserves headroom for `Interactive` so a re-dock is never starved by a
/// bulk sweep occupying the whole queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive: a medicinal chemist re-docking a handful of
    /// analogs and waiting for the answer.
    Interactive,
    /// Throughput-oriented: a library sweep that cares about makespan.
    Bulk,
}

/// What a campaign actually computes.
#[derive(Debug, Clone)]
pub enum CampaignKind {
    /// Screen a ligand library against one receptor.
    Library { receptor_atoms: usize, n_spots: usize, jobs: Vec<LigandJob> },
    /// Library screen under a degradation plan (the fault-injection study
    /// that used to live behind `screen_library_faulty`).
    Faulty {
        receptor_atoms: usize,
        n_spots: usize,
        jobs: Vec<LigandJob>,
        faults: FaultPlan,
        /// `true`: jobs flow to the node with the earliest *observed*
        /// finish time. `false`: jobs are pinned up front by a static plan
        /// built from nominal (healthy) costs.
        dynamic: bool,
        /// `Some(g)`: each degraded node's fault lives inside the node —
        /// GPU lane `g` slows after warm-up — and costs come from the
        /// intra-node faulty replay ([`vsched::schedule_trace_faulty`]).
        gpu_victim: Option<usize>,
    },
    /// Every (ligand, receptor) pair of an L×R selectivity matrix.
    CrossDock { receptors: Vec<ReceptorTarget>, ligands: Vec<LigandJob> },
}

/// One tenant submission: what to compute, at what priority, arriving when.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub kind: CampaignKind,
    pub strategy: Strategy,
    pub priority: Priority,
    /// RNG seed of the search trajectories — part of the cache key: the
    /// same work with the same seed is the same result.
    pub seed: u64,
    /// Virtual arrival time of the submission (clamped to the service
    /// clock at [`Service::submit`]).
    pub arrival_vt: f64,
}

impl Campaign {
    /// A plain library screen (the old `SimCluster::screen_library`).
    pub fn library(
        receptor_atoms: usize,
        n_spots: usize,
        jobs: Vec<LigandJob>,
        strategy: Strategy,
    ) -> Campaign {
        Campaign {
            kind: CampaignKind::Library { receptor_atoms, n_spots, jobs },
            strategy,
            priority: Priority::Bulk,
            seed: 0,
            arrival_vt: 0.0,
        }
    }

    /// A fault-injected screen (the old `screen_library_faulty`): static
    /// nominal-plan assignment by default, node-level degradation.
    pub fn faulty(
        receptor_atoms: usize,
        n_spots: usize,
        jobs: Vec<LigandJob>,
        strategy: Strategy,
        faults: FaultPlan,
    ) -> Campaign {
        Campaign {
            kind: CampaignKind::Faulty {
                receptor_atoms,
                n_spots,
                jobs,
                faults,
                dynamic: false,
                gpu_victim: None,
            },
            strategy,
            priority: Priority::Bulk,
            seed: 0,
            arrival_vt: 0.0,
        }
    }

    /// An L×R cross-docking matrix (the old `schedule_cross_docking`).
    pub fn cross_dock(
        receptors: Vec<ReceptorTarget>,
        ligands: Vec<LigandJob>,
        strategy: Strategy,
    ) -> Campaign {
        Campaign {
            kind: CampaignKind::CrossDock { receptors, ligands },
            strategy,
            priority: Priority::Bulk,
            seed: 0,
            arrival_vt: 0.0,
        }
    }

    /// Submit at interactive priority (weighted-fair boost + admission
    /// reserve).
    pub fn interactive(mut self) -> Campaign {
        self.priority = Priority::Interactive;
        self
    }

    /// Set the search seed (cache-key component).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Arrive at virtual time `vt` instead of immediately.
    pub fn at(mut self, vt: f64) -> Campaign {
        assert!(vt.is_finite() && vt >= 0.0, "arrival time must be finite and non-negative");
        self.arrival_vt = vt;
        self
    }

    /// (Faulty campaigns) assign by observed finish times instead of the
    /// static nominal plan.
    ///
    /// # Panics
    /// Panics when called on a non-faulty campaign.
    pub fn dynamic(mut self, dyn_assign: bool) -> Campaign {
        match &mut self.kind {
            CampaignKind::Faulty { dynamic, .. } => *dynamic = dyn_assign,
            _ => panic!("dynamic assignment toggle only applies to faulty campaigns"),
        }
        self
    }

    /// (Faulty campaigns) model each degraded node's fault as GPU lane `g`
    /// slowing mid-run.
    ///
    /// # Panics
    /// Panics when called on a non-faulty campaign.
    pub fn gpu_victim(mut self, g: usize) -> Campaign {
        match &mut self.kind {
            CampaignKind::Faulty { gpu_victim, .. } => *gpu_victim = Some(g),
            _ => panic!("gpu_victim only applies to faulty campaigns"),
        }
        self
    }

    /// Number of per-ligand jobs this campaign expands into.
    pub fn job_count(&self) -> usize {
        match &self.kind {
            CampaignKind::Library { jobs, .. } | CampaignKind::Faulty { jobs, .. } => jobs.len(),
            CampaignKind::CrossDock { receptors, ligands } => receptors.len() * ligands.len(),
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Bounded queue size in per-ligand jobs; a campaign whose cold jobs
    /// do not fit is rejected whole (backpressure).
    pub queue_capacity: usize,
    /// Slots only interactive submissions may claim.
    pub interactive_reserve: usize,
    /// Weighted-fair drain weight of the interactive class.
    pub interactive_weight: f64,
    /// Weighted-fair drain weight of the bulk class.
    pub bulk_weight: f64,
    /// Results-cache entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 256,
            interactive_reserve: 32,
            interactive_weight: 4.0,
            bulk_weight: 1.0,
            cache_capacity: 1024,
        }
    }
}

/// Planned elasticity: nodes joining and leaving at virtual times.
#[derive(Debug, Clone, Default)]
pub struct ScalePlan {
    joins: Vec<(f64, SimNode)>,
    leaves: Vec<(f64, usize)>,
}

impl ScalePlan {
    pub fn new() -> ScalePlan {
        ScalePlan::default()
    }

    /// A new node joins the fleet at `vt` (it gets the next node id).
    pub fn join_at(mut self, vt: f64, node: SimNode) -> ScalePlan {
        assert!(vt.is_finite() && vt >= 0.0, "join time must be finite and non-negative");
        self.joins.push((vt, node));
        self
    }

    /// Node `node` leaves the fleet at `vt`; its unfinished jobs requeue.
    pub fn leave_at(mut self, vt: f64, node: usize) -> ScalePlan {
        assert!(vt.is_finite() && vt >= 0.0, "leave time must be finite and non-negative");
        self.leaves.push((vt, node));
        self
    }
}

/// Ticket returned by [`Service::submit`]; redeem with
/// [`Service::outcome`] after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle(usize);

/// Per-campaign result summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Last completion minus arrival, seconds of virtual time.
    pub turnaround_s: f64,
    /// Jobs the campaign expanded into.
    pub jobs: usize,
    /// Jobs completed (device-executed + cache-served).
    pub completed: usize,
    /// Jobs served from the results cache.
    pub cache_hits: usize,
    /// Conformation evaluations actually executed on the fleet.
    pub device_evals: u64,
}

/// State of one submission as seen through its [`JobHandle`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Not yet drained.
    Pending,
    /// Admission control turned the campaign away: the queue held `queued`
    /// of `capacity` jobs at arrival.
    Rejected { queued: usize, capacity: usize },
    /// The campaign ran to completion.
    Completed(CampaignStats),
}

/// Aggregate outcome of one [`Service::drain`]: every report the old
/// per-entry-point types carried (`ClusterReport`, `FaultReport`,
/// `CrossDockReport`), unified and extended with queue-latency percentiles
/// and fleet utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Drain-window duration: last completion minus drain start, seconds.
    pub makespan: f64,
    /// Per-node busy time (compute + its communication) this drain,
    /// indexed by node id (including joined and departed nodes).
    pub node_times: Vec<f64>,
    /// `assignment[j]` = node that completed expanded job `j` (submission
    /// order across campaigns), or `usize::MAX` for a cache hit.
    pub assignment: Vec<usize>,
    /// Total time spent moving data (all nodes).
    pub comm_time: f64,
    /// The same completed work run serially on node 0's spec (for the
    /// speed-up claim).
    pub single_node_time: f64,
    /// Expanded jobs across admitted campaigns (cache hits included).
    pub total_jobs: usize,
    /// Jobs completed this drain.
    pub completed_jobs: usize,
    /// Campaigns admitted this drain.
    pub campaigns_admitted: usize,
    /// Campaigns rejected by admission control this drain.
    pub campaigns_rejected: usize,
    /// Jobs served from the results cache.
    pub cache_hits: usize,
    /// Conformation evaluations executed on the fleet (cache hits cost 0).
    pub device_evals: u64,
    /// Compute seconds lost to aborted in-flight jobs on leaving nodes.
    pub wasted_s: f64,
    /// Queue-latency percentiles (admission → dispatch), all classes.
    pub queue_p50_s: f64,
    pub queue_p95_s: f64,
    pub queue_p99_s: f64,
    /// p99 queue latency of the interactive class alone — the number the
    /// admission reserve and weighted-fair drain exist to bound.
    pub interactive_p99_s: f64,
    /// Useful busy time over alive node-time in the drain window.
    pub utilization: f64,
    /// Elastic fleet events this drain.
    pub node_joins: usize,
    pub node_leaves: usize,
    /// Jobs requeued off leaving nodes.
    pub requeued_jobs: usize,
}

impl CampaignReport {
    /// Cluster speed-up over running the completed work on node 0.
    pub fn speedup(&self) -> f64 {
        self.single_node_time / self.makespan
    }

    /// Fraction of total node busy time attributable to communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.comm_time / (self.node_times.iter().sum::<f64>() + f64::EPSILON)
        }
    }
}

/// One per-ligand unit of queued work.
#[derive(Debug, Clone)]
struct QueuedJob {
    /// Global id this drain (board index / assignment slot).
    global: usize,
    campaign: usize,
    /// Index within the campaign's expansion (for migration events).
    slot: usize,
    ligand: usize,
    receptor_atoms: usize,
    n_spots: usize,
    job: LigandJob,
    key: CacheKey,
    /// Original admission time (latency accounting).
    submitted: f64,
    /// Earliest dispatchable time (moves forward on requeue).
    arrival_eff: f64,
    pin: Option<usize>,
    interactive: bool,
    /// Occupies an admission-gate slot until first dispatch.
    counted_in_gate: bool,
    /// Latency was already sampled at a first (later aborted) dispatch.
    latency_sampled: bool,
    /// Conformation evaluations this job runs.
    items: u64,
}

#[derive(Debug, Clone)]
struct Dispatch {
    job: QueuedJob,
    start: f64,
    end: f64,
    comm: f64,
    compute: f64,
}

struct NodeState {
    node: SimNode,
    alive: bool,
    free_vt: f64,
    alive_from: f64,
    /// Busy (comm + compute) this drain.
    busy_s: f64,
    /// Alive span this drain (accumulated at leave / drain end).
    span_s: f64,
    sched: Vec<Dispatch>,
}

struct CampaignState {
    campaign: Campaign,
    stats: CampaignStats,
    last_completion: f64,
    rejected: Option<(usize, usize)>,
    drained: bool,
    /// Static nominal plan (faulty campaigns): node per expansion slot.
    planned: Vec<usize>,
    /// Actual completing node per expansion slot (`usize::MAX` = cache).
    actual: Vec<usize>,
}

/// Exact memo key of one (node, job-shape, fault-context) cost evaluation.
/// `Ord` because the memo is a `BTreeMap` — iteration order must not
/// depend on the hasher's address seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct CostKey {
    node: usize,
    receptor_atoms: usize,
    n_spots: usize,
    params_dbg: String,
    ligand_atoms: usize,
    strategy_dbg: String,
    factor_bits: u64,
    victim: Option<usize>,
}

/// Baseline pseudo-node id for single-node cost memoization.
const BASELINE_NODE: usize = usize::MAX;

/// The campaign service: bounded admission, weighted-fair virtual-time
/// dispatch, results caching, elastic fleet.
///
/// ```
/// use vscluster::{Campaign, NetModel, Service, SimCluster, synthetic_library};
/// use vsched::Strategy;
///
/// let cluster = SimCluster::uniform(2, NetModel::infiniband(), vscreen::platform::hertz);
/// let mut svc = Service::new(cluster, Default::default());
/// let jobs = synthetic_library(8, &metaheur::m3(0.5), 1);
/// svc.submit(Campaign::library(3264, 16, jobs, Strategy::HomogeneousSplit));
/// let report = svc.drain();
/// assert!(report.speedup() > 1.5); // two nodes nearly halve the campaign
/// ```
pub struct Service {
    nodes: Vec<NodeState>,
    initial_nodes: usize,
    baseline: SimNode,
    net: NetModel,
    config: ServiceConfig,
    trace: Trace,
    gate: AdmissionGate,
    cache: ResultsCache,
    campaigns: Vec<CampaignState>,
    /// Handles submitted since the last drain.
    pending: Vec<usize>,
    /// Scale events not yet consumed by a drain.
    scale_joins: Vec<(f64, SimNode)>,
    scale_leaves: Vec<(f64, usize)>,
    /// Class queues: `[interactive, bulk]`.
    queues: [Vec<QueuedJob>; 2],
    /// Weighted-fair served cost per class.
    served: [f64; 2],
    /// Service virtual clock (persists across drains).
    now: f64,
    cost_memo: BTreeMap<CostKey, f64>,
    /// One learned cost oracle per node (plus the [`BASELINE_NODE`]
    /// pseudo-node), shared across every `Strategy::Oracle` campaign the
    /// service runs: tenant N+1 starts warm from tenant N's fits. Fits
    /// consume only virtual-time measurements, so drains stay
    /// bit-identical per submission order.
    oracles: BTreeMap<usize, SharedOracle>,
}

impl Service {
    /// Stand the service up over a node pool.
    pub fn new(cluster: SimCluster, config: ServiceConfig) -> Service {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.interactive_weight > 0.0 && config.bulk_weight > 0.0,
            "class weights must be positive"
        );
        let net = cluster.net();
        let nodes: Vec<NodeState> = cluster
            .nodes()
            .iter()
            .map(|n| NodeState {
                node: n.clone(),
                alive: true,
                free_vt: 0.0,
                alive_from: 0.0,
                busy_s: 0.0,
                span_s: 0.0,
                sched: Vec::new(),
            })
            .collect();
        let baseline = nodes[0].node.clone();
        Service {
            initial_nodes: nodes.len(),
            baseline,
            nodes,
            net,
            gate: AdmissionGate::new(config.queue_capacity, config.interactive_reserve),
            cache: ResultsCache::new(config.cache_capacity),
            config,
            trace: Trace::disabled(),
            campaigns: Vec::new(),
            pending: Vec::new(),
            scale_joins: Vec::new(),
            scale_leaves: Vec::new(),
            queues: [Vec::new(), Vec::new()],
            served: [0.0, 0.0],
            now: 0.0,
            cost_memo: BTreeMap::new(),
            oracles: BTreeMap::new(),
        }
    }

    /// Attach a trace: admission/backpressure, cache hits, fleet
    /// elasticity, fault injections, and job migrations all become events.
    pub fn traced(mut self, trace: &Trace) -> Service {
        self.trace = trace.clone();
        self
    }

    /// Register planned scale-up/down events; consumed by the next drain.
    pub fn scale(&mut self, plan: ScalePlan) {
        self.scale_joins.extend(plan.joins);
        self.scale_leaves.extend(plan.leaves);
    }

    /// Node ids currently alive.
    pub fn alive_nodes(&self) -> Vec<usize> {
        self.nodes.iter().enumerate().filter(|(_, n)| n.alive).map(|(i, _)| i).collect()
    }

    /// The service's virtual clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Node `ni`'s shared learned-cost oracle, present once any
    /// `Strategy::Oracle` campaign has executed (or been planned) there.
    /// Dashboards and tests peek at its fits; campaigns submitted later
    /// start warm from the same instance.
    pub fn node_oracle(&self, ni: usize) -> Option<&SharedOracle> {
        self.oracles.get(&ni)
    }

    /// Submit one campaign. Validation panics early; admission control
    /// itself is evaluated at the campaign's arrival time during
    /// [`Service::drain`] (queue occupancy only exists there).
    pub fn submit(&mut self, campaign: Campaign) -> JobHandle {
        self.validate(&campaign);
        let handle = self.campaigns.len();
        let jobs = campaign.job_count();
        self.campaigns.push(CampaignState {
            campaign,
            stats: CampaignStats {
                turnaround_s: 0.0,
                jobs,
                completed: 0,
                cache_hits: 0,
                device_evals: 0,
            },
            last_completion: 0.0,
            rejected: None,
            drained: false,
            planned: Vec::new(),
            actual: Vec::new(),
        });
        self.pending.push(handle);
        JobHandle(handle)
    }

    /// Outcome of a prior submission.
    pub fn outcome(&self, handle: JobHandle) -> JobOutcome {
        let state = &self.campaigns[handle.0];
        if let Some((queued, capacity)) = state.rejected {
            JobOutcome::Rejected { queued, capacity }
        } else if state.drained {
            JobOutcome::Completed(state.stats.clone())
        } else {
            JobOutcome::Pending
        }
    }

    fn validate(&self, campaign: &Campaign) {
        assert!(campaign.arrival_vt.is_finite(), "arrival time must be finite");
        match &campaign.kind {
            CampaignKind::Library { receptor_atoms, n_spots, .. } => {
                assert!(*n_spots > 0 && *receptor_atoms > 0, "degenerate screening problem");
            }
            CampaignKind::Faulty { receptor_atoms, n_spots, faults, gpu_victim, .. } => {
                assert!(*n_spots > 0 && *receptor_atoms > 0, "degenerate screening problem");
                assert_eq!(faults.slowdowns.len(), self.initial_nodes, "fault plan size mismatch");
                assert!(faults.slowdowns.iter().all(|&f| f >= 1.0), "factors must be ≥ 1");
                if let Some(g) = gpu_victim {
                    assert!(
                        self.nodes.iter().filter(|n| n.alive).all(|n| *g < n.node.gpus().len()),
                        "gpu_victim {g} out of range for some node"
                    );
                    assert!(
                        faults.slowdowns.iter().all(|f| f.is_finite()),
                        "gpu_victim needs finite factors (the lane keeps executing, slowly)"
                    );
                }
            }
            CampaignKind::CrossDock { receptors, ligands } => {
                assert!(!receptors.is_empty() && !ligands.is_empty(), "empty campaign");
                assert!(
                    receptors.iter().all(|r| r.atoms > 0 && r.n_spots > 0),
                    "degenerate receptor target"
                );
            }
        }
    }

    /// Run every pending submission and scale event to quiescence and
    /// report on the drain window. Deterministic: same submissions, same
    /// seeds, bit-identical report.
    pub fn drain(&mut self) -> CampaignReport {
        let t0 = self.now;
        let mut t_end = t0;

        // Drain-window accounting reset; alive spans restart at the
        // window edge.
        for n in self.nodes.iter_mut() {
            n.busy_s = 0.0;
            n.span_s = 0.0;
            if n.alive {
                n.alive_from = t0;
            }
        }
        let mut agg = DrainAgg::default();

        // Size the completion board for everything that can possibly run.
        let pending: Vec<usize> = std::mem::take(&mut self.pending);
        let total_possible: usize = pending.iter().map(|&h| self.campaigns[h].stats.jobs).sum();
        let mut board = CompletionBoard::new(total_possible);
        let mut assignment: Vec<usize> = Vec::with_capacity(total_possible);
        let mut next_global = 0usize;

        // Merge events: joins(0) < leaves(1) < submissions(2) at equal vt.
        enum Ev {
            Join(SimNode),
            Leave(usize),
            Submit(usize),
        }
        let mut events: Vec<(f64, u8, usize, Ev)> = Vec::new();
        for (seq, (vt, node)) in std::mem::take(&mut self.scale_joins).into_iter().enumerate() {
            events.push((vt.max(t0), 0, seq, Ev::Join(node)));
        }
        for (seq, (vt, id)) in std::mem::take(&mut self.scale_leaves).into_iter().enumerate() {
            events.push((vt.max(t0), 1, seq, Ev::Leave(id)));
        }
        for (seq, &h) in pending.iter().enumerate() {
            let vt = self.campaigns[h].campaign.arrival_vt.max(t0);
            events.push((vt, 2, seq, Ev::Submit(h)));
        }
        events.sort_by(|a, b| {
            // PANICS: every event time is validated finite at submission.
            a.0.partial_cmp(&b.0)
                .expect("finite event times")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });

        for (vt, _, _, ev) in events {
            t_end = t_end.max(vt);
            self.advance(vt, &mut agg);
            self.commit(vt, &mut board, &mut assignment, &mut agg, &mut t_end);
            match ev {
                Ev::Join(node) => {
                    let id = self.nodes.len();
                    self.nodes.push(NodeState {
                        node,
                        alive: true,
                        free_vt: vt,
                        alive_from: vt,
                        busy_s: 0.0,
                        span_s: 0.0,
                        sched: Vec::new(),
                    });
                    agg.node_joins += 1;
                    self.trace.emit(Event::NodeJoined { node: id as u32, vt });
                }
                Ev::Leave(id) => self.leave(id, vt, &mut agg),
                Ev::Submit(h) => self.admit(
                    h,
                    vt,
                    &mut board,
                    &mut assignment,
                    &mut next_global,
                    &mut t_end,
                    &mut agg,
                ),
            }
        }

        // Run the remaining queue dry.
        self.advance(f64::INFINITY, &mut agg);
        self.commit(f64::INFINITY, &mut board, &mut assignment, &mut agg, &mut t_end);

        // Close out alive spans and the clock.
        for n in self.nodes.iter_mut() {
            if n.alive {
                n.span_s += (t_end - n.alive_from).max(0.0);
            }
        }
        self.now = t_end;

        // Seal campaign stats; emit migration events for dynamic faulty
        // campaigns (actual vs the static nominal plan).
        for &h in &pending {
            let state = &mut self.campaigns[h];
            if state.rejected.is_some() {
                continue;
            }
            state.drained = true;
            state.stats.turnaround_s =
                (state.last_completion - state.campaign.arrival_vt.max(t0)).max(0.0);
            let migrations: Vec<(u32, u32, u32)> = if self.trace.is_enabled()
                && matches!(state.campaign.kind, CampaignKind::Faulty { dynamic: true, .. })
            {
                state
                    .actual
                    .iter()
                    .zip(&state.planned)
                    .enumerate()
                    .filter(|(_, (&to, &from))| to != from && to != usize::MAX)
                    .map(|(slot, (&to, &from))| (slot as u32, from as u32, to as u32))
                    .collect()
            } else {
                Vec::new()
            };
            for (job, from_node, to_node) in migrations {
                self.trace.emit(Event::JobMigrated { job, from_node, to_node });
            }
        }

        let mut all_lat = agg.latency[0].clone();
        all_lat.extend_from_slice(&agg.latency[1]);
        // PANICS: latency samples are differences of finite virtual times.
        all_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mut inter = agg.latency[0].clone();
        // PANICS: latency samples are differences of finite virtual times.
        inter.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

        let busy: f64 = self.nodes.iter().map(|n| n.busy_s).sum();
        let span: f64 = self.nodes.iter().map(|n| n.span_s).sum();
        CampaignReport {
            makespan: t_end - t0,
            node_times: self.nodes.iter().map(|n| n.busy_s).collect(),
            assignment,
            comm_time: agg.comm_time,
            single_node_time: agg.single_node_time,
            total_jobs: agg.total_jobs,
            completed_jobs: agg.completed_jobs,
            campaigns_admitted: agg.admitted,
            campaigns_rejected: agg.rejected,
            cache_hits: agg.cache_hits,
            device_evals: agg.device_evals,
            wasted_s: agg.wasted_s,
            queue_p50_s: percentile(&all_lat, 50.0),
            queue_p95_s: percentile(&all_lat, 95.0),
            queue_p99_s: percentile(&all_lat, 99.0),
            interactive_p99_s: percentile(&inter, 99.0),
            utilization: if span > 0.0 { busy / span } else { 1.0 },
            node_joins: agg.node_joins,
            node_leaves: agg.node_leaves,
            requeued_jobs: agg.requeued,
        }
    }

    /// Admission: expand the campaign, serve duplicates from the cache,
    /// reserve queue slots for the cold remainder or reject whole.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        h: usize,
        vt: f64,
        board: &mut CompletionBoard,
        assignment: &mut Vec<usize>,
        next_global: &mut usize,
        t_end: &mut f64,
        agg: &mut DrainAgg,
    ) {
        let campaign = self.campaigns[h].campaign.clone();
        let interactive = campaign.priority == Priority::Interactive;
        let expanded = self.expand(h, &campaign, vt, next_global);
        let total = expanded.len();

        let (hits, cold): (Vec<QueuedJob>, Vec<QueuedJob>) =
            expanded.into_iter().partition(|j| self.cache.lookup(&j.key, vt).is_some());

        if !cold.is_empty() && !self.gate.try_admit(cold.len(), interactive) {
            let queued = self.gate.occupancy();
            self.trace.emit(Event::JobRejected {
                campaign: h as u32,
                jobs: total as u32,
                queued: queued as u32,
                capacity: self.gate.capacity() as u32,
                vt,
            });
            self.campaigns[h].rejected = Some((queued, self.gate.capacity()));
            agg.rejected += 1;
            // Rebase the global-id watermark: the rejected jobs' ids are
            // simply never used (the board stays incomplete there, and no
            // assignment slots were appended).
            *next_global -= total;
            return;
        }

        self.trace.emit(Event::JobAdmitted {
            campaign: h as u32,
            jobs: total as u32,
            interactive,
            vt,
        });
        if let CampaignKind::Faulty { faults, .. } = &campaign.kind {
            for (ni, &f) in faults.slowdowns.iter().enumerate() {
                if f > 1.0 {
                    self.trace.emit(Event::FaultInjected { node: ni as u32, slowdown: f });
                }
            }
        }
        agg.admitted += 1;
        agg.total_jobs += total;
        assignment.resize(assignment.len() + total, usize::MAX);
        self.campaigns[h].actual = vec![usize::MAX; total];

        // Duplicates complete in cache-hit time: one result gather, zero
        // device evaluations, no queue slot.
        for jb in hits {
            let done_at = vt + self.net.transfer_time(RESULT_BYTES);
            if board.try_complete(jb.global) {
                let state = &mut self.campaigns[h];
                state.stats.completed += 1;
                state.stats.cache_hits += 1;
                state.last_completion = state.last_completion.max(done_at);
                agg.completed_jobs += 1;
                agg.cache_hits += 1;
                *t_end = t_end.max(done_at);
                self.trace.emit(Event::CacheHit {
                    campaign: h as u32,
                    ligand: jb.ligand as u32,
                    vt,
                });
            }
        }

        // Static faulty campaigns pin each job to its nominal-plan node;
        // dynamic ones keep the plan only to report migrations against.
        let (is_faulty, dynamic) = match campaign.kind {
            CampaignKind::Faulty { dynamic, .. } => (true, dynamic),
            _ => (false, true),
        };
        let mut cold = cold;
        if is_faulty {
            let plan = self.plan_static(&cold, &campaign);
            let mut planned = vec![usize::MAX; total];
            for (jb, &node) in cold.iter_mut().zip(&plan) {
                planned[jb.slot] = node;
                if !dynamic {
                    jb.pin = Some(node);
                }
            }
            self.campaigns[h].planned = planned;
        }
        for jb in cold {
            self.queues[if jb.interactive { 0 } else { 1 }].push(jb);
        }
    }

    /// Expand a campaign into per-ligand jobs, LPT-ordered by workload
    /// volume (so the earliest-free dispatch reproduces the old
    /// longest-first assignment), with cache keys and global ids assigned.
    fn expand(
        &mut self,
        h: usize,
        campaign: &Campaign,
        vt: f64,
        next_global: &mut usize,
    ) -> Vec<QueuedJob> {
        let interactive = campaign.priority == Priority::Interactive;
        let kernel = fnv1a_str(&format!("{:?}", campaign.strategy));
        let mut out: Vec<QueuedJob> = Vec::new();
        let mut push =
            |job: &LigandJob, receptor_atoms: usize, n_spots: usize, rec_name: Option<&str>| {
                let receptor =
                    fnv1a(&[receptor_atoms as u64, n_spots as u64, rec_name.map_or(0, fnv1a_str)]);
                let ligand = fnv1a(&[
                    job.id as u64,
                    job.ligand_atoms as u64,
                    job.bytes,
                    fnv1a_str(&job.params.name),
                    job.params.evals_per_spot(),
                ]);
                out.push(QueuedJob {
                    global: 0,
                    campaign: h,
                    slot: 0,
                    ligand: job.id,
                    receptor_atoms,
                    n_spots,
                    job: job.clone(),
                    key: CacheKey { receptor, ligand, seed: campaign.seed, kernel },
                    submitted: vt,
                    arrival_eff: vt,
                    pin: None,
                    interactive,
                    counted_in_gate: true,
                    latency_sampled: false,
                    items: job.total_items(n_spots),
                });
            };
        match &campaign.kind {
            CampaignKind::Library { receptor_atoms, n_spots, jobs }
            | CampaignKind::Faulty { receptor_atoms, n_spots, jobs, .. } => {
                for job in jobs {
                    push(job, *receptor_atoms, *n_spots, None);
                }
            }
            CampaignKind::CrossDock { receptors, ligands } => {
                for lig in ligands {
                    for rec in receptors {
                        push(lig, rec.atoms, rec.n_spots, Some(&rec.name));
                    }
                }
            }
        }
        // Longest-processing-time-first: stable, so equal volumes keep
        // submission order.
        out.sort_by_key(|j| std::cmp::Reverse(j.items * j.job.pairs_per_eval(j.receptor_atoms)));
        for (slot, jb) in out.iter_mut().enumerate() {
            jb.slot = slot;
            jb.global = *next_global;
            *next_global += 1;
        }
        out
    }

    /// The static nominal plan: balance LPT-ordered jobs by *healthy* cost
    /// estimates over the currently alive nodes, blind to degradation.
    fn plan_static(&mut self, cold: &[QueuedJob], campaign: &Campaign) -> Vec<usize> {
        let alive = self.alive_nodes();
        assert!(!alive.is_empty(), "no alive nodes to plan over");
        let mut planned_t: Vec<f64> = vec![0.0; alive.len()];
        let mut plan = Vec::with_capacity(cold.len());
        for jb in cold {
            let (k, _) = planned_t
                .iter()
                .enumerate()
                // PANICS: node clocks are finite sums of finite costs.
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite clocks"))
                .expect("non-empty");
            planned_t[k] += self.nominal_cost(alive[k], jb, campaign.strategy);
            plan.push(alive[k]);
        }
        plan
    }

    /// Dispatch queued work onto free nodes up to virtual time `until`.
    fn advance(&mut self, until: f64, agg: &mut DrainAgg) {
        loop {
            let mut ids: Vec<usize> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.alive && n.free_vt < until)
                .map(|(i, _)| i)
                .collect();
            ids.sort_by(|&a, &b| {
                // Node clocks are finite, so total_cmp matches numeric order.
                self.nodes[a].free_vt.total_cmp(&self.nodes[b].free_vt).then(a.cmp(&b))
            });
            let mut dispatched = false;
            for ni in ids {
                if let Some((class, pos)) = self.pick(ni) {
                    self.dispatch(ni, class, pos, agg);
                    dispatched = true;
                    break;
                }
            }
            if !dispatched {
                break;
            }
        }
    }

    /// Weighted-fair class selection, then FIFO within the class: the
    /// eligible job of the class with the smallest served-cost/weight
    /// (ties go to interactive).
    fn pick(&self, ni: usize) -> Option<(usize, usize)> {
        let norm = [
            self.served[0] / self.config.interactive_weight,
            self.served[1] / self.config.bulk_weight,
        ];
        let order: [usize; 2] = if norm[1] < norm[0] { [1, 0] } else { [0, 1] };
        for class in order {
            if let Some(pos) = self.queues[class].iter().position(|j| j.pin.is_none_or(|p| p == ni))
            {
                return Some((class, pos));
            }
        }
        None
    }

    fn dispatch(&mut self, ni: usize, class: usize, pos: usize, agg: &mut DrainAgg) {
        let mut jb = self.queues[class].remove(pos);
        let start = self.nodes[ni].free_vt.max(jb.arrival_eff);
        let comm = self.net.transfer_time(jb.job.bytes) + self.net.transfer_time(RESULT_BYTES);
        let compute = self.true_cost(ni, &jb);
        let end = start + comm + compute;
        if !jb.latency_sampled {
            agg.latency[class].push(start - jb.submitted);
            jb.latency_sampled = true;
        }
        if jb.counted_in_gate {
            self.gate.release(1);
            jb.counted_in_gate = false;
        }
        self.served[class] += comm + compute;
        let node = &mut self.nodes[ni];
        node.free_vt = end;
        node.sched.push(Dispatch { job: jb, start, end, comm, compute });
    }

    /// Commit dispatches finished by `vt`: exactly-once completion, cache
    /// publication, busy/comm accounting, report aggregation.
    fn commit(
        &mut self,
        vt: f64,
        board: &mut CompletionBoard,
        assignment: &mut [usize],
        agg: &mut DrainAgg,
        t_end: &mut f64,
    ) {
        for ni in 0..self.nodes.len() {
            let mut finished: Vec<Dispatch> = Vec::new();
            self.nodes[ni].sched.retain(|d| {
                if d.end <= vt {
                    finished.push(d.clone());
                    false
                } else {
                    true
                }
            });
            for d in finished {
                if !board.try_complete(d.job.global) {
                    continue; // late duplicate delivery of a requeued job
                }
                let node = &mut self.nodes[ni];
                node.busy_s += d.end - d.start;
                agg.comm_time += d.comm;
                agg.completed_jobs += 1;
                agg.device_evals += d.job.items;
                *t_end = t_end.max(d.end);
                if d.job.global < assignment.len() {
                    assignment[d.job.global] = ni;
                }
                self.cache
                    .publish(d.job.key, CachedResult { compute_s: d.compute, ready_vt: d.end });
                let strategy = self.campaigns[d.job.campaign].campaign.strategy;
                agg.single_node_time += self.nominal_cost(BASELINE_NODE, &d.job, strategy);
                let state = &mut self.campaigns[d.job.campaign];
                state.stats.completed += 1;
                state.stats.device_evals += d.job.items;
                state.last_completion = state.last_completion.max(d.end);
                if d.job.slot < state.actual.len() {
                    state.actual[d.job.slot] = ni;
                }
            }
        }
    }

    /// Node `id` leaves: in-flight and future-booked jobs are aborted and
    /// requeued (unpinned — their node is gone); partially-executed work
    /// is counted as waste.
    fn leave(&mut self, id: usize, vt: f64, agg: &mut DrainAgg) {
        assert!(
            id < self.nodes.len() && self.nodes[id].alive,
            "leave of unknown or dead node {id}"
        );
        assert!(
            self.nodes.iter().enumerate().any(|(i, n)| n.alive && i != id),
            "cannot scale the fleet to zero nodes"
        );
        let t0_span = self.nodes[id].alive_from;
        let aborted: Vec<Dispatch> = std::mem::take(&mut self.nodes[id].sched);
        let requeued = aborted.len();
        for d in aborted {
            if d.start < vt {
                // The straddling job's partial execution is lost; it is
                // waste, not useful busy time.
                agg.wasted_s += (vt - d.start).min(d.end - d.start);
            }
            let mut jb = d.job;
            jb.arrival_eff = vt;
            jb.pin = None;
            let class = if jb.interactive { 0 } else { 1 };
            self.queues[class].push(jb);
            agg.requeued += 1;
        }
        let node = &mut self.nodes[id];
        node.alive = false;
        node.span_s += (vt - t0_span.max(0.0)).max(0.0);
        node.free_vt = vt;
        agg.node_leaves += 1;
        self.trace.emit(Event::NodeLeft { node: id as u32, vt, requeued: requeued as u32 });
    }

    /// Healthy compute cost of `jb` on node `ni` (or the node-0 baseline
    /// spec when `ni == BASELINE_NODE`), memoized.
    fn nominal_cost(&mut self, ni: usize, jb: &QueuedJob, strategy: Strategy) -> f64 {
        if matches!(strategy, Strategy::Oracle { .. }) {
            // The learned split depends on the shared oracle's current
            // fits, so it cannot be memoized; a planning peek runs on a
            // clone and ingests nothing.
            return self.oracle_cost(ni, jb, strategy, &[], false);
        }
        let key = self.cost_key(ni, jb, strategy, 1.0, None);
        if let Some(&c) = self.cost_memo.get(&key) {
            return c;
        }
        let node =
            if ni == BASELINE_NODE { self.baseline.clone() } else { self.nodes[ni].node.clone() };
        let batches = synthetic_trace(&jb.job.params, jb.n_spots);
        let pairs = jb.job.pairs_per_eval(jb.receptor_atoms);
        let c = schedule_trace(node.cpu(), node.gpus(), &batches, pairs, strategy).makespan;
        self.cost_memo.insert(key, c);
        c
    }

    /// Replay `jb` on node `ni` under the learned-oracle strategy,
    /// sharing one [`SharedOracle`] per node across campaigns. With
    /// `ingest` the replay's observations update the shared model (an
    /// actual execution); without it the replay runs on a clone (a
    /// planning peek, e.g. the single-node baseline) and the shared fits
    /// are untouched.
    fn oracle_cost(
        &mut self,
        ni: usize,
        jb: &QueuedJob,
        strategy: Strategy,
        phases: &[(usize, Vec<f64>)],
        ingest: bool,
    ) -> f64 {
        let node =
            if ni == BASELINE_NODE { self.baseline.clone() } else { self.nodes[ni].node.clone() };
        let batches = synthetic_trace(&jb.job.params, jb.n_spots);
        let pairs = jb.job.pairs_per_eval(jb.receptor_atoms);
        let shared =
            self.oracles.entry(ni).or_insert_with(|| SharedOracle::new(node.gpus().len())).clone();
        let emit = ingest && self.trace.is_enabled();
        let silent = Trace::disabled();
        let events = if emit { &self.trace } else { &silent };
        let replay = |oracle: &mut vsched::CostOracle| {
            schedule_trace_drift(
                node.cpu(),
                node.gpus(),
                &batches,
                pairs,
                strategy,
                phases,
                events,
                Some(oracle),
            )
            .makespan
        };
        if ingest {
            shared.with(replay)
        } else {
            let mut peek = shared.with(|o| o.clone());
            replay(&mut peek)
        }
    }

    /// True cost of running `jb` on node `ni` under its campaign's fault
    /// model. Traced intra-node faulty replays are never memoized (each
    /// actual execution contributes its device-lane events).
    fn true_cost(&mut self, ni: usize, jb: &QueuedJob) -> f64 {
        let campaign = &self.campaigns[jb.campaign].campaign;
        let strategy = campaign.strategy;
        let (factor, victim) = match &campaign.kind {
            CampaignKind::Faulty { faults, gpu_victim, .. } => {
                // Fault plans index the initial fleet; joined nodes are
                // healthy by construction.
                let f = if ni < faults.slowdowns.len() { faults.factor(ni) } else { 1.0 };
                (f, *gpu_victim)
            }
            _ => (1.0, None),
        };
        if let Strategy::Oracle { warmup, .. } = strategy {
            // Actual executions feed the node's shared oracle (ingest =
            // true), so the next campaign on this node starts warm. The
            // fault context becomes a drift phase: a victim lane slows
            // after warm-up (its prior was measured healthy); a uniform
            // fault slows every GPU from the first batch.
            let n_gpus = if ni < self.nodes.len() {
                self.nodes[ni].node.gpus().len()
            } else {
                self.baseline.gpus().len()
            };
            let phases: Vec<(usize, Vec<f64>)> = if factor == 1.0 {
                Vec::new()
            } else {
                match victim {
                    None => vec![(0, vec![factor; n_gpus])],
                    Some(g) => {
                        let mut slowdowns = vec![1.0; n_gpus];
                        slowdowns[g] = factor;
                        vec![(warmup.iterations, slowdowns)]
                    }
                }
            };
            return self.oracle_cost(ni, jb, strategy, &phases, true);
        }
        if factor == 1.0 {
            // Healthy lane: the intra-node faulty replay reduces to the
            // nominal schedule exactly, so both fault models share it.
            return self.nominal_cost(ni, jb, strategy);
        }
        match victim {
            None => self.nominal_cost(ni, jb, strategy) * factor,
            Some(g) => {
                let emit = self.trace.is_enabled();
                let key = self.cost_key(ni, jb, strategy, factor, Some(g));
                if !emit {
                    if let Some(&c) = self.cost_memo.get(&key) {
                        return c;
                    }
                }
                let node = self.nodes[ni].node.clone();
                let batches = synthetic_trace(&jb.job.params, jb.n_spots);
                let pairs = jb.job.pairs_per_eval(jb.receptor_atoms);
                let mut slowdowns = vec![1.0; node.gpus().len()];
                slowdowns[g] = factor;
                // A degraded GPU keeps its nominal speed through the
                // warm-up (its Eq. 1 weight is measured healthy) and slows
                // at this batch.
                let onset = match strategy {
                    Strategy::HeterogeneousSplit { warmup }
                    | Strategy::AdaptiveSplit { warmup, .. }
                    | Strategy::WorkSteal { warmup, .. } => warmup.iterations,
                    _ => 0,
                };
                let silent = Trace::disabled();
                let events = if emit { &self.trace } else { &silent };
                let c = schedule_trace_faulty(
                    node.cpu(),
                    node.gpus(),
                    &batches,
                    pairs,
                    strategy,
                    &slowdowns,
                    onset,
                    events,
                )
                .makespan;
                if !emit {
                    self.cost_memo.insert(key, c);
                }
                c
            }
        }
    }

    fn cost_key(
        &self,
        ni: usize,
        jb: &QueuedJob,
        strategy: Strategy,
        factor: f64,
        victim: Option<usize>,
    ) -> CostKey {
        CostKey {
            node: ni,
            receptor_atoms: jb.receptor_atoms,
            n_spots: jb.n_spots,
            params_dbg: format!("{:?}", jb.job.params),
            ligand_atoms: jb.job.ligand_atoms,
            strategy_dbg: format!("{strategy:?}"),
            factor_bits: factor.to_bits(),
            victim,
        }
    }
}

/// Per-drain aggregation scratchpad.
#[derive(Default)]
struct DrainAgg {
    comm_time: f64,
    single_node_time: f64,
    total_jobs: usize,
    completed_jobs: usize,
    admitted: usize,
    rejected: usize,
    cache_hits: usize,
    device_evals: u64,
    wasted_s: f64,
    node_joins: usize,
    node_leaves: usize,
    requeued: usize,
    /// Queue-latency samples per class: `[interactive, bulk]`.
    latency: [Vec<f64>; 2],
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::synthetic_library;
    use vscreen::platform;

    fn jobs(n: usize) -> Vec<LigandJob> {
        synthetic_library(n, &metaheur::m1(0.2), 3)
    }

    fn service(n: usize) -> Service {
        Service::new(
            SimCluster::uniform(n, NetModel::infiniband(), platform::hertz),
            ServiceConfig::default(),
        )
    }

    fn screen(n_nodes: usize, n_jobs: usize) -> CampaignReport {
        let mut svc = service(n_nodes);
        svc.submit(Campaign::library(3264, 16, jobs(n_jobs), Strategy::HomogeneousSplit));
        svc.drain()
    }

    #[test]
    fn all_jobs_assigned_to_valid_nodes() {
        let r = screen(3, 20);
        assert_eq!(r.assignment.len(), 20);
        assert!(r.assignment.iter().all(|&n| n < 3));
        assert_eq!(r.completed_jobs, 20);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn two_nodes_speed_up_meaningfully() {
        let r = screen(2, 24);
        let s = r.speedup();
        assert!(s > 1.5, "2-node speedup only {s}");
        assert!(s <= 2.01, "superlinear speedup is a bug: {s}");
    }

    #[test]
    fn scaling_improves_with_more_nodes() {
        let s2 = screen(2, 32).speedup();
        let s4 = screen(4, 32).speedup();
        assert!(s4 > s2, "4 nodes {s4} should beat 2 nodes {s2}");
        assert!(s4 <= 4.01);
    }

    #[test]
    fn single_node_service_matches_baseline() {
        let r = screen(1, 10);
        // Only comm overhead separates the 1-node service from the
        // no-cluster baseline.
        assert!(r.makespan >= r.single_node_time);
        assert!((r.makespan - r.single_node_time - r.comm_time).abs() < 1e-9);
    }

    #[test]
    fn slow_network_increases_comm_share() {
        let run = |net: NetModel| {
            let mut svc = Service::new(
                SimCluster::uniform(2, net, platform::hertz),
                ServiceConfig::default(),
            );
            svc.submit(Campaign::library(3264, 16, jobs(16), Strategy::HomogeneousSplit));
            svc.drain()
        };
        let fast = run(NetModel::infiniband());
        let slow = run(NetModel::gigabit_ethernet());
        assert!(slow.comm_time > fast.comm_time);
        assert!(slow.comm_fraction() > fast.comm_fraction());
    }

    #[test]
    fn heterogeneous_cluster_balances_by_finish_time() {
        // One Hertz + one Jupiter: Jupiter's bigger GPU pool should absorb
        // more jobs.
        let cluster =
            SimCluster::new(vec![platform::hertz(), platform::jupiter()], NetModel::infiniband());
        let mut svc = Service::new(cluster, ServiceConfig::default());
        svc.submit(Campaign::library(3264, 16, jobs(30), Strategy::HomogeneousSplit));
        let r = svc.drain();
        let to_jupiter = r.assignment.iter().filter(|&&n| n == 1).count();
        assert!(to_jupiter >= 15, "Jupiter took only {to_jupiter}/30 jobs");
        let imb = (r.node_times[0] - r.node_times[1]).abs() / r.makespan;
        assert!(imb < 0.35, "node imbalance {imb}");
    }

    #[test]
    fn deterministic_reports() {
        let a = screen(3, 12);
        let b = screen(3, 12);
        assert_eq!(a, b, "same submissions must produce bit-identical reports");
    }

    #[test]
    fn utilization_high_when_backlogged() {
        let r = screen(2, 24);
        assert!(r.utilization > 0.9, "backlogged fleet should stay busy: {}", r.utilization);
        assert!(r.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn admission_rejects_over_capacity_and_reserve_protects_interactive() {
        let cluster = SimCluster::uniform(1, NetModel::infiniband(), platform::hertz);
        let mut svc = Service::new(
            cluster,
            ServiceConfig { queue_capacity: 10, interactive_reserve: 4, ..Default::default() },
        );
        let big = svc.submit(Campaign::library(3264, 16, jobs(6), Strategy::HomogeneousSplit));
        // Second bulk campaign exceeds capacity - reserve (6 slots).
        let bulk = svc.submit(Campaign::library(3264, 16, jobs(4), Strategy::HomogeneousSplit));
        // Interactive fits in the reserve.
        let inter = svc
            .submit(Campaign::library(3264, 16, jobs(4), Strategy::HomogeneousSplit).interactive());
        let r = svc.drain();
        assert_eq!(r.campaigns_admitted, 2);
        assert_eq!(r.campaigns_rejected, 1);
        assert!(matches!(svc.outcome(big), JobOutcome::Completed(_)));
        assert!(matches!(svc.outcome(bulk), JobOutcome::Rejected { queued: 6, capacity: 10 }));
        assert!(matches!(svc.outcome(inter), JobOutcome::Completed(_)));
        assert_eq!(r.completed_jobs, 10);
    }

    #[test]
    fn staggered_arrivals_report_queue_latency() {
        let mut svc = service(1);
        svc.submit(Campaign::library(3264, 16, jobs(8), Strategy::HomogeneousSplit));
        svc.submit(Campaign::library(3264, 16, jobs(8), Strategy::HomogeneousSplit).at(1e-6));
        let r = svc.drain();
        // The second campaign's jobs waited behind the first: nonzero tail.
        assert!(r.queue_p99_s > 0.0);
        assert!(r.queue_p50_s <= r.queue_p95_s && r.queue_p95_s <= r.queue_p99_s);
    }

    #[test]
    fn interactive_class_outruns_bulk_under_contention() {
        let mut svc = service(1);
        // A heavy bulk backlog, then an interactive re-dock arriving after
        // the backlog is queued.
        svc.submit(Campaign::library(3264, 16, jobs(24), Strategy::HomogeneousSplit));
        let h = svc.submit(
            Campaign::library(3264, 16, jobs(2), Strategy::HomogeneousSplit)
                .interactive()
                .at(1e-6)
                .seed(9),
        );
        let r = svc.drain();
        let stats = match svc.outcome(h) {
            JobOutcome::Completed(s) => s,
            o => panic!("interactive campaign should complete: {o:?}"),
        };
        // Weighted-fair drain must not make the re-dock wait for the whole
        // bulk sweep.
        assert!(
            stats.turnaround_s < r.makespan / 2.0,
            "interactive turnaround {} vs makespan {}",
            stats.turnaround_s,
            r.makespan
        );
        assert!(r.interactive_p99_s <= r.queue_p99_s);
    }

    #[test]
    fn duplicate_submission_served_from_cache() {
        let mut svc = service(2);
        let lib = jobs(10);
        svc.submit(Campaign::library(3264, 16, lib.clone(), Strategy::HomogeneousSplit).seed(7));
        let cold = svc.drain();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.device_evals > 0);

        let h = svc.submit(Campaign::library(3264, 16, lib, Strategy::HomogeneousSplit).seed(7));
        let warm = svc.drain();
        assert_eq!(warm.cache_hits, 10, "every duplicate job must hit the cache");
        assert_eq!(warm.device_evals, 0, "cache hits run zero device evaluations");
        assert!(warm.makespan < cold.makespan / 100.0);
        match svc.outcome(h) {
            JobOutcome::Completed(s) => {
                assert_eq!(s.cache_hits, 10);
                assert_eq!(s.device_evals, 0);
            }
            o => panic!("duplicate campaign should complete: {o:?}"),
        }
    }

    #[test]
    fn different_seed_misses_cache() {
        let mut svc = service(2);
        let lib = jobs(6);
        svc.submit(Campaign::library(3264, 16, lib.clone(), Strategy::HomogeneousSplit).seed(1));
        svc.drain();
        svc.submit(Campaign::library(3264, 16, lib, Strategy::HomogeneousSplit).seed(2));
        let r = svc.drain();
        assert_eq!(r.cache_hits, 0, "a different seed is different work");
        assert!(r.device_evals > 0);
    }

    #[test]
    fn node_join_mid_campaign_shortens_makespan() {
        let base = screen(1, 16);
        let mut svc = service(1);
        svc.scale(ScalePlan::new().join_at(base.makespan * 0.25, platform::hertz()));
        svc.submit(Campaign::library(3264, 16, jobs(16), Strategy::HomogeneousSplit));
        let r = svc.drain();
        assert_eq!(r.node_joins, 1);
        assert!(r.makespan < base.makespan, "{} vs {}", r.makespan, base.makespan);
        assert!(r.assignment.contains(&1), "joined node must take work");
    }

    #[test]
    fn node_leave_requeues_without_losing_jobs() {
        let base = screen(2, 16);
        let mut svc = service(2);
        svc.scale(ScalePlan::new().leave_at(base.makespan * 0.3, 1));
        svc.submit(Campaign::library(3264, 16, jobs(16), Strategy::HomogeneousSplit));
        let r = svc.drain();
        assert_eq!(r.node_leaves, 1);
        assert!(r.requeued_jobs > 0, "departing node must shed queued work");
        assert_eq!(r.completed_jobs, 16, "no job may be lost on node leave");
        // Everything after the leave lands on the survivor.
        assert!(r.makespan > base.makespan);
        assert!(r.wasted_s >= 0.0);
    }

    #[test]
    fn elastic_events_are_traced() {
        let trace = Trace::new();
        let base = screen(2, 12);
        let mut svc = service(2).traced(&trace);
        svc.scale(
            ScalePlan::new()
                .join_at(base.makespan * 0.2, platform::hertz())
                .leave_at(base.makespan * 0.4, 0),
        );
        svc.submit(Campaign::library(3264, 16, jobs(12), Strategy::HomogeneousSplit));
        svc.drain();
        let data = trace.snapshot();
        let kinds: Vec<&str> = data.payloads().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"JobAdmitted"));
        assert!(kinds.contains(&"NodeJoined"));
        assert!(kinds.contains(&"NodeLeft"));
    }

    #[test]
    fn virtual_clock_persists_across_drains() {
        let mut svc = service(1);
        svc.submit(Campaign::library(3264, 16, jobs(4), Strategy::HomogeneousSplit));
        let a = svc.drain();
        assert!(svc.now() > 0.0);
        svc.submit(Campaign::library(3264, 16, jobs(4), Strategy::HomogeneousSplit).seed(5));
        let b = svc.drain();
        assert!((svc.now() - (a.makespan + b.makespan)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_spots_panics() {
        let mut svc = service(1);
        svc.submit(Campaign::library(3264, 0, jobs(1), Strategy::HomogeneousSplit));
    }

    #[test]
    #[should_panic]
    fn scaling_to_zero_nodes_panics() {
        let mut svc = service(1);
        svc.scale(ScalePlan::new().leave_at(0.0, 0));
        svc.submit(Campaign::library(3264, 16, jobs(2), Strategy::HomogeneousSplit));
        svc.drain();
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 99.0), 4.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    // ---- fault-injected campaigns (ported from the old entry point) ----

    fn faulty_jobs() -> Vec<LigandJob> {
        synthetic_library(24, &metaheur::m1(0.3), 5)
    }

    fn run_faulty(campaign: Campaign) -> CampaignReport {
        let mut svc = service(3);
        svc.submit(campaign);
        svc.drain()
    }

    fn faulty(plan: &FaultPlan) -> Campaign {
        Campaign::faulty(3264, 16, faulty_jobs(), Strategy::HomogeneousSplit, plan.clone())
    }

    #[test]
    fn healthy_static_equals_dynamic() {
        let plan = FaultPlan::healthy(3);
        let d = run_faulty(faulty(&plan).dynamic(true));
        let s = run_faulty(faulty(&plan));
        assert!((d.makespan - s.makespan).abs() / d.makespan < 1e-9);
    }

    #[test]
    fn dynamic_absorbs_straggler() {
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let dynamic = run_faulty(faulty(&plan).dynamic(true));
        let static_ = run_faulty(faulty(&plan));
        assert!(
            dynamic.makespan < static_.makespan / 1.5,
            "dynamic {} should absorb the 4x straggler vs static {}",
            dynamic.makespan,
            static_.makespan
        );
        // The degraded node got fewer jobs under dynamic scheduling.
        let count = |r: &CampaignReport| r.assignment.iter().filter(|&&n| n == 1).count();
        assert!(count(&dynamic) < count(&static_));
    }

    #[test]
    fn static_makespan_scales_with_straggler_factor() {
        let m = |f: f64| run_faulty(faulty(&FaultPlan::straggler(3, 0, f))).makespan;
        let healthy = m(1.0);
        let slow = m(3.0);
        assert!((slow / healthy - 3.0).abs() < 0.5, "static suffers ~3x: {}", slow / healthy);
    }

    #[test]
    fn dead_node_starved_by_dynamic() {
        let plan = FaultPlan::straggler(3, 2, 1e6);
        let r = run_faulty(faulty(&plan).dynamic(true));
        let to_dead = r.assignment.iter().filter(|&&n| n == 2).count();
        // LPT gives the dead node at most its first pick before its clock
        // explodes past everyone else.
        assert!(to_dead <= 1, "dead node got {to_dead} jobs");
        assert_eq!(r.completed_jobs, 24, "all jobs still complete under faults");
    }

    #[test]
    fn traced_straggler_emits_fault_and_migration_events() {
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let trace = Trace::new();
        let mut svc = service(3).traced(&trace);
        svc.submit(faulty(&plan).dynamic(true));
        let traced = svc.drain();
        let data = trace.snapshot();
        let faults_seen: Vec<_> = data
            .payloads()
            .into_iter()
            .filter_map(|e| match e {
                Event::FaultInjected { node, slowdown } => Some((node, slowdown)),
                _ => None,
            })
            .collect();
        assert_eq!(faults_seen, vec![(1, 4.0)]);
        let migrations =
            data.payloads().into_iter().filter(|e| matches!(e, Event::JobMigrated { .. })).count();
        assert!(migrations > 0, "4x straggler under dynamic scheduling must move jobs");
        // Tracing must not perturb the schedule itself.
        let plain = run_faulty(faulty(&plan).dynamic(true));
        assert_eq!(traced.assignment, plain.assignment);
        assert_eq!(traced.makespan, plain.makespan);
    }

    #[test]
    fn untraced_run_emits_nothing() {
        let trace = Trace::disabled();
        let mut svc = service(3).traced(&trace);
        svc.submit(faulty(&FaultPlan::straggler(3, 1, 4.0)).dynamic(true));
        svc.drain();
        assert!(trace.snapshot().is_empty());
    }

    /// Intra-node fault-model campaigns: generations big enough (128 spots
    /// × population) that the degraded node's deques hold many
    /// occupancy-floor chunks — granularity for lane steals.
    fn intra(plan: &FaultPlan, strategy: Strategy) -> Campaign {
        Campaign::faulty(3264, 128, faulty_jobs(), strategy, plan.clone()).gpu_victim(1)
    }

    fn worksteal() -> Strategy {
        Strategy::WorkSteal { warmup: vsched::WarmupConfig::default(), divisor: 2 }
    }

    #[test]
    fn gpu_victim_worksteal_steals_inside_degraded_node() {
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let trace = Trace::new();
        let mut svc = service(3).traced(&trace);
        // Static node assignment: every JobMigrated on the trace is an
        // *intra-node* device-lane steal, not a node-level migration.
        svc.submit(intra(&plan, worksteal()));
        svc.drain();
        let data = trace.snapshot();
        let steals =
            data.payloads().into_iter().filter(|e| matches!(e, Event::JobMigrated { .. })).count();
        assert!(steals > 0, "degraded lane must shed chunks to the healthy lanes");
    }

    #[test]
    fn gpu_victim_worksteal_beats_frozen_split() {
        // With the fault inside the node, the runtime's steals absorb what
        // the frozen Percent split cannot.
        let plan = FaultPlan::straggler(3, 1, 4.0);
        let frozen = run_faulty(intra(
            &plan,
            Strategy::HeterogeneousSplit { warmup: vsched::WarmupConfig::default() },
        ));
        let stealing = run_faulty(intra(&plan, worksteal()));
        assert!(
            stealing.makespan < frozen.makespan,
            "steals must absorb the lane fault: {} vs {}",
            stealing.makespan,
            frozen.makespan
        );
    }

    #[test]
    fn gpu_victim_healthy_matches_node_level_model() {
        // With every factor 1.0 the two fault models agree: no lane is
        // degraded, so the intra-node replay reduces to the nominal one.
        let plan = FaultPlan::healthy(3);
        let node_level = run_faulty(faulty(&plan));
        let intra_r = run_faulty(faulty(&plan).gpu_victim(1));
        assert!((node_level.makespan - intra_r.makespan).abs() < 1e-12 * node_level.makespan);
        assert_eq!(node_level.assignment, intra_r.assignment);
    }

    #[test]
    #[should_panic]
    fn gpu_victim_out_of_range_panics() {
        let mut svc = service(3);
        svc.submit(faulty(&FaultPlan::healthy(3)).gpu_victim(9));
    }

    #[test]
    #[should_panic]
    fn gpu_victim_infinite_factor_panics() {
        let mut svc = service(3);
        let plan = FaultPlan { slowdowns: vec![1.0, f64::INFINITY, 1.0] };
        svc.submit(faulty(&plan).gpu_victim(0));
    }

    #[test]
    #[should_panic]
    fn plan_size_mismatch_panics() {
        let mut svc = service(3);
        svc.submit(faulty(&FaultPlan::healthy(2)).dynamic(true));
    }

    // ---- cross-docking campaigns (ported from the old entry point) ----

    fn targets() -> Vec<ReceptorTarget> {
        vec![
            ReceptorTarget { name: "target".into(), atoms: 3264, n_spots: 16 },
            ReceptorTarget { name: "off-target".into(), atoms: 8609, n_spots: 24 },
        ]
    }

    #[test]
    fn full_matrix_is_assigned() {
        let mut svc = service(3);
        let ligands = synthetic_library(6, &metaheur::m1(0.2), 2);
        svc.submit(Campaign::cross_dock(targets(), ligands, Strategy::HomogeneousSplit));
        let r = svc.drain();
        assert_eq!(r.total_jobs, 12);
        assert_eq!(r.completed_jobs, 12);
        assert!(r.assignment.iter().all(|&n| n < 3));
    }

    #[test]
    fn more_nodes_shorten_cross_docking() {
        let run = |n: usize| {
            let mut svc = service(n);
            let ligands = synthetic_library(8, &metaheur::m1(0.2), 3);
            svc.submit(Campaign::cross_dock(targets(), ligands, Strategy::HomogeneousSplit));
            svc.drain().makespan
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 < t1 / 2.5, "{t4} vs {t1}");
    }

    #[test]
    fn cross_dock_receptors_never_alias_in_cache() {
        // The same ligand against two receptors is two distinct results;
        // resubmitting against only one target must hit only that half.
        let ligands = synthetic_library(4, &metaheur::m1(0.2), 5);
        let mut svc = service(2);
        svc.submit(
            Campaign::cross_dock(targets(), ligands.clone(), Strategy::HomogeneousSplit).seed(3),
        );
        svc.drain();
        let one_target = vec![targets().remove(0)];
        svc.submit(Campaign::cross_dock(one_target, ligands, Strategy::HomogeneousSplit).seed(3));
        let r = svc.drain();
        assert_eq!(r.cache_hits, 4, "the shared target's results must be reused");
        assert_eq!(r.device_evals, 0);
    }

    #[test]
    #[should_panic]
    fn empty_receptors_panic() {
        let mut svc = service(1);
        let ligands = synthetic_library(1, &metaheur::m1(0.1), 1);
        svc.submit(Campaign::cross_dock(vec![], ligands, Strategy::HomogeneousSplit));
    }

    // ---- learned-oracle campaigns (cross-tenant warm sharing) ----

    fn oracle() -> Strategy {
        // m1(0.2) expands to ~7 batches per job; warm-up must finish
        // inside one replay for the first job to install the prior.
        let warmup = vsched::WarmupConfig { iterations: 2, items_per_iteration: 64 };
        Strategy::Oracle { warmup, divisor: 2 }
    }

    /// A second tenant with ligands the results cache has never seen, so
    /// its jobs really execute (the only reuse channel is the oracle).
    fn tenant2() -> Campaign {
        Campaign::library(3264, 16, synthetic_library(8, &metaheur::m1(0.2), 7), oracle())
    }

    #[test]
    fn oracle_campaigns_are_deterministic() {
        let run = || {
            let mut svc = service(2);
            svc.submit(Campaign::library(3264, 16, jobs(8), oracle()));
            let first = svc.drain();
            svc.submit(tenant2());
            (first, svc.drain())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "shared-oracle drains must stay bit-identical per submission order");
    }

    #[test]
    fn second_tenant_starts_warm_from_shared_oracle() {
        // Cold: tenant 2 alone pays the equal-split warm-up on Hertz's
        // strongly heterogeneous lanes for every job.
        let mut cold_svc = service(1);
        cold_svc.submit(tenant2());
        let cold = cold_svc.drain().makespan;
        // Warm: tenant 1 trains node 0's shared oracle first, so tenant
        // 2's replays skip warm-up and seed the learned split directly.
        let mut warm_svc = service(1);
        warm_svc.submit(Campaign::library(3264, 16, jobs(8), oracle()));
        warm_svc.drain();
        let before: u64 = warm_svc
            .node_oracle(0)
            .expect("tenant 1 must have instantiated the node oracle")
            .with(|o| o.fits().iter().map(|(_, f)| f.observations).sum());
        assert!(before > 0, "tenant 1 must leave fitted observations behind");
        warm_svc.submit(tenant2());
        let warm = warm_svc.drain().makespan;
        let after: u64 = warm_svc
            .node_oracle(0)
            .unwrap()
            .with(|o| o.fits().iter().map(|(_, f)| f.observations).sum());
        assert!(after > before, "tenant 2 must keep feeding the shared model");
        assert!(warm < cold, "warm-started tenant must beat the cold one: {warm} vs {cold}");
    }

    #[test]
    fn oracle_planning_peek_does_not_mutate_shared_fits() {
        // The single-node baseline in `commit` runs nominal_cost with the
        // campaign's strategy — for oracle campaigns that is a planning
        // peek on a clone, so only real node executions (node 0 here)
        // accumulate observations under the BASELINE_NODE key.
        let mut svc = service(1);
        svc.submit(Campaign::library(3264, 16, jobs(4), oracle()));
        let r = svc.drain();
        assert!(r.single_node_time > 0.0);
        let baseline_obs: u64 = svc
            .node_oracle(BASELINE_NODE)
            .expect("the baseline peek instantiates a pseudo-node oracle")
            .with(|o| o.fits().iter().map(|(_, f)| f.observations).sum());
        assert_eq!(baseline_obs, 0, "planning peeks must never ingest observations");
    }
}
