//! Interconnect cost model — the message-passing (MPI) analog.

use serde::{Deserialize, Serialize};

/// A simple latency + bandwidth model for point-to-point messages:
/// `t(bytes) = latency + bytes / bandwidth` — the standard Hockney model
/// MPI performance analysis uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// One-way message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl NetModel {
    /// Gigabit Ethernet-class interconnect.
    pub fn gigabit_ethernet() -> NetModel {
        NetModel { latency_s: 50e-6, bandwidth_bps: 125e6 }
    }

    /// FDR InfiniBand-class interconnect.
    pub fn infiniband() -> NetModel {
        NetModel { latency_s: 1.5e-6, bandwidth_bps: 6.8e9 }
    }

    /// Time to move one message of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Time for a scatter of `n` messages of `bytes` each from one root
    /// (serialized sends, the worst case for a flat tree).
    pub fn scatter_time(&self, n: usize, bytes: u64) -> f64 {
        n as f64 * self.transfer_time(bytes)
    }

    /// Time for a flat-tree gather of `n` messages of `bytes` each.
    pub fn gather_time(&self, n: usize, bytes: u64) -> f64 {
        self.scatter_time(n, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency_and_bandwidth() {
        let n = NetModel { latency_s: 1e-3, bandwidth_bps: 1e6 };
        let t = n.transfer_time(1_000_000);
        assert!((t - (1e-3 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let n = NetModel::gigabit_ethernet();
        assert_eq!(n.transfer_time(0), n.latency_s);
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let bytes = 10_000_000;
        assert!(
            NetModel::infiniband().transfer_time(bytes)
                < NetModel::gigabit_ethernet().transfer_time(bytes)
        );
    }

    #[test]
    fn scatter_scales_with_fanout() {
        let n = NetModel::gigabit_ethernet();
        assert!((n.scatter_time(4, 100) - 4.0 * n.transfer_time(100)).abs() < 1e-15);
        assert_eq!(n.gather_time(3, 50), n.scatter_time(3, 50));
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        NetModel { latency_s: 0.0, bandwidth_bps: 0.0 }.transfer_time(1);
    }
}
