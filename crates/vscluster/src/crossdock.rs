//! Cross-docking targets: the receptor side of an L×R matrix.
//!
//! Selectivity screening — will a candidate bind the target but *not* the
//! off-target? — multiplies the workload by the receptor count, which is
//! exactly when the cluster extension pays off. Submit the matrix with
//! [`crate::service::Campaign::cross_dock`]; the service expands every
//! (ligand, receptor) pair into one job and schedules the flattened matrix
//! like any other campaign.

use serde::{Deserialize, Serialize};

/// One receptor target in a cross-docking campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceptorTarget {
    pub name: String,
    pub atoms: usize,
    pub n_spots: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_compare_by_value() {
        let t = ReceptorTarget { name: "2BSM".into(), atoms: 3264, n_spots: 16 };
        assert_eq!(t.clone(), t);
        let off = ReceptorTarget { name: "off-target".into(), ..t.clone() };
        assert_ne!(off, t);
    }
}
