//! Cross-docking campaigns: L ligands × R receptors.
//!
//! Selectivity screening — will a candidate bind the target but *not* the
//! off-target? — multiplies the workload by the receptor count, which is
//! exactly when the cluster extension pays off. This module schedules the
//! full L×R job matrix across a cluster and reports both the timing and
//! the (virtually-timed, really-scored) affinity matrix when run locally.

use crate::cluster::SimCluster;
use crate::library::LigandJob;
use serde::{Deserialize, Serialize};
use vsched::Strategy;

/// One receptor target in a cross-docking campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceptorTarget {
    pub name: String,
    pub atoms: usize,
    pub n_spots: usize,
}

/// Scheduling report for the L×R matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossDockReport {
    pub makespan: f64,
    pub node_times: Vec<f64>,
    /// `assignment[l][r]` = node that ran ligand `l` against receptor `r`.
    pub assignment: Vec<Vec<usize>>,
    pub total_jobs: usize,
}

/// Schedule every (ligand, receptor) pair across the cluster with dynamic
/// earliest-finish assignment (LPT over the whole matrix).
pub fn schedule_cross_docking(
    cluster: &SimCluster,
    receptors: &[ReceptorTarget],
    ligands: &[LigandJob],
    strategy: Strategy,
) -> CrossDockReport {
    assert!(!receptors.is_empty() && !ligands.is_empty(), "empty campaign");

    // Build the flattened job matrix with per-job cost keys.
    struct Cell {
        l: usize,
        r: usize,
        volume: u64,
    }
    let mut cells: Vec<Cell> = Vec::with_capacity(ligands.len() * receptors.len());
    for (l, lig) in ligands.iter().enumerate() {
        for (r, rec) in receptors.iter().enumerate() {
            cells.push(Cell {
                l,
                r,
                volume: lig.total_items(rec.n_spots) * lig.pairs_per_eval(rec.atoms),
            });
        }
    }
    cells.sort_by_key(|c| std::cmp::Reverse(c.volume));

    let n = cluster.node_count();
    let mut node_times = vec![0.0f64; n];
    let mut assignment = vec![vec![usize::MAX; receptors.len()]; ligands.len()];
    for cell in &cells {
        let (ni, _) = node_times
            .iter()
            .enumerate()
            // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        let rec = &receptors[cell.r];
        let lig = &ligands[cell.l];
        let node = &cluster.nodes()[ni];
        let trace = vscreen::trace::synthetic_trace(&lig.params, rec.n_spots);
        let t = vsched::schedule_trace(
            node.cpu(),
            node.gpus(),
            &trace,
            lig.pairs_per_eval(rec.atoms),
            strategy,
        )
        .makespan;
        node_times[ni] += t;
        assignment[cell.l][cell.r] = ni;
    }

    let makespan = node_times.iter().cloned().fold(0.0, f64::max);
    CrossDockReport { makespan, node_times, assignment, total_jobs: cells.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::synthetic_library;
    use crate::net::NetModel;
    use vscreen::platform;

    fn targets() -> Vec<ReceptorTarget> {
        vec![
            ReceptorTarget { name: "target".into(), atoms: 3264, n_spots: 16 },
            ReceptorTarget { name: "off-target".into(), atoms: 8609, n_spots: 24 },
        ]
    }

    #[test]
    fn full_matrix_is_assigned() {
        let cluster = SimCluster::uniform(3, NetModel::infiniband(), platform::hertz);
        let ligands = synthetic_library(6, &metaheur::m1(0.2), 2);
        let r = schedule_cross_docking(&cluster, &targets(), &ligands, Strategy::HomogeneousSplit);
        assert_eq!(r.total_jobs, 12);
        assert_eq!(r.assignment.len(), 6);
        for row in &r.assignment {
            assert_eq!(row.len(), 2);
            assert!(row.iter().all(|&n| n < 3));
        }
    }

    #[test]
    fn more_nodes_shorten_campaign() {
        let ligands = synthetic_library(8, &metaheur::m1(0.2), 3);
        let one = SimCluster::uniform(1, NetModel::infiniband(), platform::hertz);
        let four = SimCluster::uniform(4, NetModel::infiniband(), platform::hertz);
        let t1 =
            schedule_cross_docking(&one, &targets(), &ligands, Strategy::HomogeneousSplit).makespan;
        let t4 = schedule_cross_docking(&four, &targets(), &ligands, Strategy::HomogeneousSplit)
            .makespan;
        assert!(t4 < t1 / 2.5, "{t4} vs {t1}");
    }

    #[test]
    fn big_receptor_jobs_dominate_and_spread() {
        // The 8609-atom off-target jobs are each ~4x a 2BSM job (pairs x
        // spots); LPT must not pile them all on one node.
        let cluster = SimCluster::uniform(2, NetModel::infiniband(), platform::hertz);
        let ligands = synthetic_library(4, &metaheur::m1(0.2), 5);
        let r = schedule_cross_docking(&cluster, &targets(), &ligands, Strategy::HomogeneousSplit);
        let big_jobs_on_node0 = r.assignment.iter().filter(|row| row[1] == 0).count();
        assert!((1..=3).contains(&big_jobs_on_node0), "{big_jobs_on_node0}");
        let imb = (r.node_times[0] - r.node_times[1]).abs() / r.makespan;
        assert!(imb < 0.3, "imbalance {imb}");
    }

    #[test]
    #[should_panic]
    fn empty_receptors_panic() {
        let cluster = SimCluster::uniform(1, NetModel::infiniband(), platform::hertz);
        let ligands = synthetic_library(1, &metaheur::m1(0.1), 1);
        schedule_cross_docking(&cluster, &[], &ligands, Strategy::HomogeneousSplit);
    }
}
