//! The node pool: heterogeneous nodes joined by an interconnect.
//!
//! `SimCluster` is purely the hardware description — nodes plus network.
//! All campaign execution goes through [`crate::service::Service`], the
//! single submission API (`submit`/`drain`) that replaced the old
//! per-campaign-kind entry points.

use crate::net::NetModel;
use gpusim::SimNode;

/// Several multicore + multi-GPU nodes joined by an interconnect. Node 0's
/// host doubles as the campaign root that scatters ligands and gathers
/// results (the master of the message-passing design).
///
/// ```
/// use vscluster::{NetModel, SimCluster};
///
/// let cluster = SimCluster::uniform(2, NetModel::infiniband(), vscreen::platform::hertz);
/// assert_eq!(cluster.node_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SimCluster {
    nodes: Vec<SimNode>,
    net: NetModel,
}

impl SimCluster {
    pub fn new(nodes: Vec<SimNode>, net: NetModel) -> SimCluster {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        SimCluster { nodes, net }
    }

    /// A homogeneous cluster of `n` copies of a node template produced by
    /// `make_node`.
    pub fn uniform(n: usize, net: NetModel, make_node: impl Fn() -> SimNode) -> SimCluster {
        SimCluster::new((0..n).map(|_| make_node()).collect(), net)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// The interconnect cost model.
    pub fn net(&self) -> NetModel {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscreen::platform;

    #[test]
    fn uniform_builds_n_nodes() {
        let c = SimCluster::uniform(3, NetModel::infiniband(), platform::hertz);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.nodes().len(), 3);
        assert_eq!(c.net(), NetModel::infiniband());
    }

    #[test]
    #[should_panic]
    fn empty_cluster_panics() {
        SimCluster::new(vec![], NetModel::infiniband());
    }
}
