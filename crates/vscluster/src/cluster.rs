//! A simulated cluster of heterogeneous nodes screening a ligand library.

use crate::library::LigandJob;
use crate::net::NetModel;
use gpusim::SimNode;
use serde::{Deserialize, Serialize};
use vsched::{schedule_trace, Strategy};
use vscreen::trace::synthetic_trace;

/// Several multicore + multi-GPU nodes joined by an interconnect. Node 0's
/// host doubles as the campaign root that scatters ligands and gathers
/// results (the master of the message-passing design).
///
/// ```
/// use vscluster::{synthetic_library, NetModel, SimCluster};
/// use vsched::Strategy;
///
/// let cluster = SimCluster::uniform(2, NetModel::infiniband(), vscreen::platform::hertz);
/// let jobs = synthetic_library(8, &metaheur::m3(0.5), 1);
/// let report = cluster.screen_library(3264, 16, &jobs, Strategy::HomogeneousSplit);
/// assert!(report.speedup() > 1.5); // two nodes nearly halve the campaign
/// ```
#[derive(Debug, Clone)]
pub struct SimCluster {
    nodes: Vec<SimNode>,
    net: NetModel,
}

/// Outcome of a cluster screening campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Campaign makespan: the latest node finish time, seconds.
    pub makespan: f64,
    /// Per-node busy time (compute + its communication).
    pub node_times: Vec<f64>,
    /// `assignment[j]` = node that screened ligand job `j`.
    pub assignment: Vec<usize>,
    /// Total time spent moving data (all nodes).
    pub comm_time: f64,
    /// The same campaign run entirely on node 0 (for the speed-up claim).
    pub single_node_time: f64,
}

impl ClusterReport {
    /// Cluster speed-up over running everything on node 0.
    pub fn speedup(&self) -> f64 {
        self.single_node_time / self.makespan
    }

    /// Fraction of the makespan attributable to communication on the
    /// busiest node.
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.comm_time / (self.node_times.iter().sum::<f64>() + f64::EPSILON)
        }
    }
}

/// Serialized result payload per job (best pose + score + provenance).
const RESULT_BYTES: u64 = 256;

impl SimCluster {
    pub fn new(nodes: Vec<SimNode>, net: NetModel) -> SimCluster {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        SimCluster { nodes, net }
    }

    /// A homogeneous cluster of `n` copies of a node template produced by
    /// `make_node`.
    pub fn uniform(n: usize, net: NetModel, make_node: impl Fn() -> SimNode) -> SimCluster {
        SimCluster::new((0..n).map(|_| make_node()).collect(), net)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// Screen a ligand library against a receptor of `receptor_atoms` atoms
    /// with `n_spots` surface spots.
    ///
    /// Jobs are dealt longest-first to the node with the earliest finish
    /// time (dynamic earliest-finish assignment — the cluster-level
    /// analog of the paper's dynamic job scheduling). Each job costs a
    /// ligand scatter, the node-local screening makespan under `strategy`,
    /// and a result gather.
    pub fn screen_library(
        &self,
        receptor_atoms: usize,
        n_spots: usize,
        jobs: &[LigandJob],
        strategy: Strategy,
    ) -> ClusterReport {
        assert!(n_spots > 0 && receptor_atoms > 0, "degenerate screening problem");

        // Per-job compute cost per node is identical across same-spec
        // nodes, but we evaluate per node to honor heterogeneous clusters.
        let job_cost = |node: &SimNode, job: &LigandJob| -> f64 {
            let trace = synthetic_trace(&job.params, n_spots);
            let pairs = job.pairs_per_eval(receptor_atoms);
            schedule_trace(node.cpu(), node.gpus(), &trace, pairs, strategy).makespan
        };
        let comm_cost = |job: &LigandJob| -> f64 {
            self.net.transfer_time(job.bytes) + self.net.transfer_time(RESULT_BYTES)
        };

        // LPT order by workload volume.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&j| {
            std::cmp::Reverse(jobs[j].total_items(n_spots) * jobs[j].pairs_per_eval(receptor_atoms))
        });

        let mut node_times = vec![0.0f64; self.nodes.len()];
        let mut assignment = vec![usize::MAX; jobs.len()];
        let mut comm_time = 0.0;
        for &j in &order {
            let (ni, _) = node_times
                .iter()
                .enumerate()
                // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("non-empty");
            let c = comm_cost(&jobs[j]);
            node_times[ni] += c + job_cost(&self.nodes[ni], &jobs[j]);
            comm_time += c;
            assignment[j] = ni;
        }

        // Baseline: everything on node 0, no interconnect traffic.
        let single_node_time: f64 = jobs.iter().map(|j| job_cost(&self.nodes[0], j)).sum();

        let makespan = node_times.iter().cloned().fold(0.0, f64::max);
        ClusterReport { makespan, node_times, assignment, comm_time, single_node_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::synthetic_library;
    use vscreen::platform;

    fn jobs(n: usize) -> Vec<LigandJob> {
        synthetic_library(n, &metaheur::m1(0.2), 3)
    }

    fn cluster(n: usize) -> SimCluster {
        SimCluster::uniform(n, NetModel::infiniband(), platform::hertz)
    }

    #[test]
    fn all_jobs_assigned_to_valid_nodes() {
        let c = cluster(3);
        let r = c.screen_library(3264, 16, &jobs(20), Strategy::HomogeneousSplit);
        assert_eq!(r.assignment.len(), 20);
        assert!(r.assignment.iter().all(|&n| n < 3));
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn two_nodes_speed_up_meaningfully() {
        let r = cluster(2).screen_library(3264, 16, &jobs(24), Strategy::HomogeneousSplit);
        let s = r.speedup();
        assert!(s > 1.5, "2-node speedup only {s}");
        assert!(s <= 2.01, "superlinear speedup is a bug: {s}");
    }

    #[test]
    fn scaling_improves_with_more_nodes() {
        let js = jobs(32);
        let s2 = cluster(2).screen_library(3264, 16, &js, Strategy::HomogeneousSplit).speedup();
        let s4 = cluster(4).screen_library(3264, 16, &js, Strategy::HomogeneousSplit).speedup();
        assert!(s4 > s2, "4 nodes {s4} should beat 2 nodes {s2}");
        assert!(s4 <= 4.01);
    }

    #[test]
    fn single_node_cluster_matches_baseline() {
        let r = cluster(1).screen_library(3264, 16, &jobs(10), Strategy::HomogeneousSplit);
        // Only comm overhead separates the 1-node cluster from the
        // no-cluster baseline.
        assert!(r.makespan >= r.single_node_time);
        assert!((r.makespan - r.single_node_time - r.comm_time).abs() < 1e-9);
    }

    #[test]
    fn slow_network_increases_comm_share() {
        let js = jobs(16);
        let fast = SimCluster::uniform(2, NetModel::infiniband(), platform::hertz).screen_library(
            3264,
            16,
            &js,
            Strategy::HomogeneousSplit,
        );
        let slow = SimCluster::uniform(2, NetModel::gigabit_ethernet(), platform::hertz)
            .screen_library(3264, 16, &js, Strategy::HomogeneousSplit);
        assert!(slow.comm_time > fast.comm_time);
        assert!(slow.comm_fraction() > fast.comm_fraction());
    }

    #[test]
    fn heterogeneous_cluster_balances_by_finish_time() {
        // One Hertz + one Jupiter: Jupiter's bigger GPU pool should absorb
        // more jobs.
        let c =
            SimCluster::new(vec![platform::hertz(), platform::jupiter()], NetModel::infiniband());
        let r = c.screen_library(3264, 16, &jobs(30), Strategy::HomogeneousSplit);
        let to_jupiter = r.assignment.iter().filter(|&&n| n == 1).count();
        assert!(to_jupiter >= 15, "Jupiter took only {to_jupiter}/30 jobs");
        let imb = (r.node_times[0] - r.node_times[1]).abs() / r.makespan;
        assert!(imb < 0.35, "node imbalance {imb}");
    }

    #[test]
    fn campaign_with_heterogeneous_intra_node_strategy() {
        // Cluster scheduling composes with the paper's intra-node
        // heterogeneous algorithm.
        let r = cluster(2).screen_library(
            3264,
            16,
            &jobs(8),
            Strategy::HeterogeneousSplit { warmup: vsched::WarmupConfig::default() },
        );
        assert!(r.makespan > 0.0);
        assert!(r.speedup() > 1.2);
    }

    #[test]
    fn deterministic_reports() {
        let a = cluster(3).screen_library(3264, 16, &jobs(12), Strategy::HomogeneousSplit);
        let b = cluster(3).screen_library(3264, 16, &jobs(12), Strategy::HomogeneousSplit);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    #[should_panic]
    fn empty_cluster_panics() {
        SimCluster::new(vec![], NetModel::infiniband());
    }

    #[test]
    #[should_panic]
    fn zero_spots_panics() {
        cluster(1).screen_library(3264, 0, &jobs(1), Strategy::HomogeneousSplit);
    }
}
