//! Placeholder.
