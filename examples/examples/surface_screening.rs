//! Whole-surface blind docking (BINDSURF-style, §3.1): divide the protein
//! surface into independent spots, dock the ligand at every spot
//! simultaneously, and rank the spots by binding affinity. Writes the best
//! pose as a PDB file — the Figure 1 analog, viewable next to the receptor
//! in any molecular viewer.
//!
//! Run with: `cargo run --release -p vs-examples --example surface_screening`

use vscreen::prelude::*;

fn main() {
    let screen = VirtualScreen::builder(Dataset::TwoBxg).max_spots(12).seed(7).build();

    println!(
        "screening {} ({} atoms) over {} independent surface spots",
        screen.receptor().name,
        screen.receptor().len(),
        screen.spots().len()
    );
    for s in screen.spots() {
        println!(
            "  spot {:>3} anchored at atom {:>5} ({}), center ({:6.1},{:6.1},{:6.1})",
            s.id,
            s.anchor_atom,
            screen.receptor().elements()[s.anchor_atom],
            s.center.x,
            s.center.y,
            s.center.z
        );
    }

    // M2: the scatter-search-like configuration with intensive local search,
    // at a small scale for a fast demo.
    let params = metaheur::m2(0.1);
    let outcome = screen.run(RunSpec::cpu(&params, 8));

    println!("\nspot ranking (best first):");
    for (rank, c) in outcome.ranked.iter().enumerate() {
        println!("  #{:<2} spot {:>3}: score {:>10.2}", rank + 1, c.spot_id, c.score);
    }

    // SAS cross-check: the spot anchors must be genuinely solvent-exposed
    // under the independent Shrake-Rupley criterion.
    let exposure = vsmol::surface::sas_exposure(screen.receptor(), 1.4, 32);
    let mean_anchor_exposure: f64 =
        screen.spots().iter().map(|s| exposure[s.anchor_atom]).sum::<f64>()
            / screen.spots().len() as f64;
    let mean_all: f64 = exposure.iter().sum::<f64>() / exposure.len() as f64;
    println!(
        "\nSAS check: anchors average {:.0}% solvent exposure vs {:.0}% over all atoms",
        100.0 * mean_anchor_exposure,
        100.0 * mean_all
    );

    // Figure 1 analog: dump the best docked pose.
    let pdb = screen.pose_pdb(&outcome.best);
    let path = std::env::temp_dir().join("vscreen_best_pose.pdb");
    std::fs::write(&path, &pdb).expect("write pose file");
    println!(
        "\nbest pose (score {:.2}, spot {}) written to {}",
        outcome.best.score,
        outcome.best.spot_id,
        path.display()
    );
    println!("first pose records:");
    for line in pdb.lines().take(4) {
        println!("  {line}");
    }
}
