//! Compare the paper's four metaheuristics (Table 4) on solution quality
//! versus computational budget, plus the extension operators (tournament
//! selection, simulated annealing) beyond the paper's suite.
//!
//! Run with: `cargo run --release -p vs-examples --example metaheuristic_comparison`

use metaheur::{ImproveStrategy, MetaheuristicParams, SelectStrategy};
use vscreen::prelude::*;

fn main() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(6).seed(4).build();
    println!(
        "dataset 2BSM: {} spots, {} pairs/eval\n",
        screen.spots().len(),
        screen.pairs_per_eval()
    );

    println!("{:<22} {:>12} {:>8} {:>12}", "metaheuristic", "evaluations", "gens", "best score");

    let scale = 0.15;
    for params in metaheur::paper_suite(scale) {
        let out = screen.run(RunSpec::cpu(&params, 8));
        println!(
            "{:<22} {:>12} {:>8} {:>12.2}",
            params.name, out.evaluations, out.generations_run, out.best.score
        );
    }

    // Extensions beyond Table 4: tournament selection, simulated annealing
    // and Lamarckian (gradient) improvement on the M2 skeleton.
    let tournament = MetaheuristicParams {
        name: "M2+tournament".into(),
        select: SelectStrategy::Tournament { k: 3 },
        ..metaheur::m2(scale)
    };
    let annealing = MetaheuristicParams {
        name: "M2+annealing".into(),
        improve: ImproveStrategy::SimulatedAnnealing { steps: 2, t0: 2.0, cooling: 0.85 },
        ..metaheur::m2(scale)
    };
    let lamarckian = MetaheuristicParams {
        name: "M2+Lamarckian".into(),
        improve: ImproveStrategy::Lamarckian { steps: 1, step_size: 0.3, angle_step: 0.08 },
        ..metaheur::m2(scale)
    };
    for params in [tournament, annealing, lamarckian] {
        let out = screen.run(RunSpec::cpu(&params, 8));
        println!(
            "{:<22} {:>12} {:>8} {:>12.2}",
            params.name, out.evaluations, out.generations_run, out.best.score
        );
    }

    // The other §2.2 families: PSO (distributed) and Tabu (neighborhood),
    // run directly against the same scorer.
    let scorer = screen.scorer();
    let spots = screen.spots().to_vec();
    let spec = vsched::EvaluatorSpec::PooledCpu { threads: 8 };
    {
        let pso = metaheur::PsoParams { swarm_per_spot: 64, iterations: 30, ..Default::default() };
        let mut ev = spec.build(scorer.clone());
        let r = metaheur::run_pso(&pso, &spots, &mut ev, 4);
        println!(
            "{:<22} {:>12} {:>8} {:>12.2}",
            "PSO", r.evaluations, r.generations_run, r.best.score
        );
    }
    {
        let tabu = metaheur::TabuParams { iterations: 60, neighbors: 16, ..Default::default() };
        let mut ev = spec.build(scorer.clone());
        let r = metaheur::run_tabu(&tabu, &spots, &mut ev, 4);
        println!(
            "{:<22} {:>12} {:>8} {:>12.2}",
            "Tabu", r.evaluations, r.generations_run, r.best.score
        );
    }

    // Tuning pass (paper §1: "a tuning process is traditionally conducted").
    println!("\ntuning M1's stochastic-move knobs (grid search, 2 replicas):");
    let grid = metaheur::TuningGrid::default();
    let report =
        metaheur::tune(&metaheur::m1(0.05), &grid, &spots, || spec.build(scorer.clone()), 9, 2);
    println!(
        "  best: mutation {:.2}, shift {:.2} A, angle {:.2} rad -> mean best {:.2} ({} evals)",
        report.best.mutation_prob,
        report.best.max_shift,
        report.best.max_angle,
        report.best.mean_best,
        report.total_evaluations
    );

    println!("\n(M4 burns ~50x M1's budget on pure local search — the paper's");
    println!(" extreme case; it reaches the best GPU speed-ups in Tables 6-9)");
}
