//! Straggler injection: what happens to a screening campaign when one
//! cluster node degrades mid-life (thermal throttling, contention)?
//! Dynamic job assignment — the paper's "dynamic assignment of jobs to
//! heterogeneous resources" — absorbs the straggler; a static plan eats
//! the full slowdown. Both run as `Campaign::faulty` submissions through
//! the campaign service.
//!
//! Run with: `cargo run --release -p vs-examples --example fault_tolerance`

use vscluster::{
    synthetic_library, Campaign, FaultPlan, NetModel, Service, ServiceConfig, SimCluster,
};
use vscreen::prelude::*;

fn main() {
    let cluster = SimCluster::uniform(4, NetModel::infiniband(), platform::hertz);
    let jobs = synthetic_library(32, &metaheur::m3(1.0), 7);
    let strategy = Strategy::HomogeneousSplit;
    let run = |plan: &FaultPlan, dynamic: bool| {
        let mut svc = Service::new(cluster.clone(), ServiceConfig::default());
        svc.submit(
            Campaign::faulty(3264, 16, jobs.clone(), strategy, plan.clone()).dynamic(dynamic),
        );
        svc.drain()
    };

    println!("campaign: {} ligand jobs over 4 Hertz nodes\n", jobs.len());
    println!("{:<26} {:>10} {:>10} {:>14}", "fault scenario", "static", "dynamic", "dynamic gain");

    for (label, plan) in [
        ("healthy", FaultPlan::healthy(4)),
        ("node 2 at 2x slowdown", FaultPlan::straggler(4, 2, 2.0)),
        ("node 2 at 4x slowdown", FaultPlan::straggler(4, 2, 4.0)),
        ("node 2 at 10x slowdown", FaultPlan::straggler(4, 2, 10.0)),
        ("node 2 dead", FaultPlan::straggler(4, 2, 1e9)),
    ] {
        let s = run(&plan, false);
        let d = run(&plan, true);
        println!(
            "{:<26} {:>9.3}s {:>9.3}s {:>13.2}x",
            label,
            s.makespan,
            d.makespan,
            s.makespan / d.makespan
        );
    }

    println!("\njob placement under the 4x straggler (node 2 degraded):");
    let plan = FaultPlan::straggler(4, 2, 4.0);
    for (label, dynamic) in [("static", false), ("dynamic", true)] {
        let r = run(&plan, dynamic);
        let counts: Vec<usize> =
            (0..4).map(|n| r.assignment.iter().filter(|&&x| x == n).count()).collect();
        println!("  {label:<8} jobs per node: {counts:?}");
    }
}
