//! The paper's future-work extension (§6): a ligand-library screening
//! campaign across a message-passing cluster of heterogeneous nodes, each
//! running the intra-node heterogeneous schedule — submitted through the
//! campaign service's single entry point (`submit`/`drain`).
//!
//! Run with: `cargo run --release -p vs-examples --example cluster_screening`

use vscluster::{synthetic_library, Campaign, NetModel, Service, ServiceConfig, SimCluster};
use vscreen::prelude::*;

fn main() {
    let receptor_atoms = Dataset::TwoBsm.receptor_atoms();
    let n_spots = 16;
    let library = synthetic_library(48, &metaheur::m3(1.0), 11);
    println!(
        "campaign: {} ligands ({}-{} atoms) vs a {}-atom receptor over {} spots\n",
        library.len(),
        library.iter().map(|j| j.ligand_atoms).min().unwrap(),
        library.iter().map(|j| j.ligand_atoms).max().unwrap(),
        receptor_atoms,
        n_spots
    );

    let strategy = Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() };
    let screen = |cluster: SimCluster| {
        let mut svc = Service::new(cluster, ServiceConfig::default());
        svc.submit(Campaign::library(receptor_atoms, n_spots, library.clone(), strategy));
        svc.drain()
    };

    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>12}",
        "nodes", "makespan (s)", "speedup", "comm %", "utilization"
    );
    for n in [1usize, 2, 4, 8] {
        let r = screen(SimCluster::uniform(n, NetModel::infiniband(), vscreen::platform::hertz));
        println!(
            "{:>6} {:>14.3} {:>9.2}x {:>9.2}% {:>11.1}%",
            n,
            r.makespan,
            r.speedup(),
            100.0 * r.comm_fraction(),
            100.0 * r.utilization
        );
    }

    // A heterogeneous cluster: Hertz + Jupiter nodes working together.
    let mixed = SimCluster::new(
        vec![vscreen::platform::hertz(), vscreen::platform::jupiter()],
        NetModel::infiniband(),
    );
    let r = screen(mixed);
    let jupiter_jobs = r.assignment.iter().filter(|&&x| x == 1).count();
    println!(
        "\nmixed Hertz+Jupiter cluster: makespan {:.3}s, {} of {} jobs went to Jupiter",
        r.makespan,
        jupiter_jobs,
        library.len()
    );

    // Slow interconnect ablation.
    let slow =
        screen(SimCluster::uniform(4, NetModel::gigabit_ethernet(), vscreen::platform::hertz));
    let fast = screen(SimCluster::uniform(4, NetModel::infiniband(), vscreen::platform::hertz));
    println!(
        "gigabit-ethernet 4-node cluster: comm share {:.2}% (vs InfiniBand {:.2}%)",
        100.0 * slow.comm_fraction(),
        100.0 * fast.comm_fraction()
    );
}
