//! A small drug-discovery campaign: rank a ligand library against one
//! receptor by binding affinity — "a ranking of chemical compounds
//! according to the estimated affinity" (§2.1) — on the simulated Hertz
//! node with the heterogeneity-aware schedule.
//!
//! Run with: `cargo run --release -p vs-examples --example drug_campaign`

use vscreen::library::screen_library;
use vscreen::prelude::*;
use vsmol::synth;

fn main() {
    let receptor = Dataset::TwoBsm.receptor();
    // A small synthetic library of drug-like candidates (real campaigns
    // load SDF/PDB files; vsmol::pdb::parse_structure splits complexes).
    let ligands: Vec<Molecule> = (0..12)
        .map(|i| synth::synth_ligand(&format!("cand-{i:02}"), 18 + 3 * i, 7000 + i as u64))
        .collect();

    println!(
        "screening {} candidates ({}-{} atoms) against {} ({} atoms)\n",
        ligands.len(),
        ligands.iter().map(|l| l.len()).min().unwrap(),
        ligands.iter().map(|l| l.len()).max().unwrap(),
        receptor.name,
        receptor.len()
    );

    let node = platform::hertz();
    let ranking = screen_library(
        &receptor,
        &ligands,
        &metaheur::m3(0.15),
        &node,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        6,
        2016,
    );

    println!("{:<10} {:>8} {:>12} {:>10}", "rank", "ligand", "best score", "spot");
    for (rank, h) in ranking.hits.iter().enumerate() {
        println!(
            "{:<10} {:>8} {:>12.2} {:>10}",
            rank + 1,
            h.ligand_name,
            h.best_score,
            h.best_spot
        );
    }
    println!(
        "\ncampaign: {} evaluations, {:.4} virtual node-seconds; top-3 candidates: {:?}",
        ranking.evaluations,
        ranking.virtual_time,
        ranking.top(3)
    );
}
