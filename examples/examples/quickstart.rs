//! Quickstart: screen the paper's 2BSM benchmark compound on the simulated
//! Hertz node (Tesla K40c + GTX 580) with the heterogeneity-aware schedule.
//!
//! Run with: `cargo run --release -p vs-examples --example quickstart`

use vscreen::prelude::*;

fn main() {
    // Synthetic structures with the paper's Table 5 atom counts; real PDB
    // files load via vsmol::pdb::parse instead.
    let screen = VirtualScreen::builder(Dataset::TwoBsm)
        .max_spots(8) // cap the surface regions for a quick demo
        .seed(2016)
        .build();

    println!(
        "receptor {} atoms, ligand {} atoms, {} surface spots, {} pair interactions/eval",
        screen.receptor().len(),
        screen.ligand().len(),
        screen.spots().len(),
        screen.pairs_per_eval()
    );

    // The M3 metaheuristic (light local search) at 20% of the calibrated
    // paper workload — a few seconds of real compute.
    let params = metaheur::m3(0.2);
    let node = platform::hertz();
    let outcome = screen.run(RunSpec::on_node(
        &params,
        &node,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
    ));

    println!(
        "\n{} finished: {} scoring evaluations, {} generations",
        params.name, outcome.evaluations, outcome.generations_run
    );
    println!(
        "best binding: score {:.2} kcal/mol at spot {}",
        outcome.best.score, outcome.best.spot_id
    );
    println!("modeled node execution time: {:.4} virtual seconds", outcome.virtual_time);

    println!("\ntop spots by affinity:");
    for c in outcome.ranked.iter().take(5) {
        println!("  spot {:>3}: {:>10.2}", c.spot_id, c.score);
    }
}
