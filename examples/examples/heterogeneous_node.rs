//! The paper's core experiment in miniature: the same screening workload
//! executed under each scheduling strategy on the strongly heterogeneous
//! Hertz node (Tesla K40c + GeForce GTX 580), showing the warm-up phase,
//! the Equation 1 `Percent` split, and the resulting speed-ups.
//!
//! Run with: `cargo run --release -p vs-examples --example heterogeneous_node`

use vsched::{percent_factors, warmup_times};
use vscreen::prelude::*;

fn main() {
    let node = platform::hertz();
    println!("node {}: {} GPUs", node.name(), node.device_count());
    for i in 0..node.device_count() {
        let s = node.properties(i);
        println!(
            "  GPU {i}: {:<16} {:>5} cores @ {:>6.0} MHz, CCC {}, {} MB",
            s.name,
            s.lanes(),
            s.clock_mhz,
            s.ccc_string(),
            s.memory_mb
        );
    }

    // Warm-up phase demo (§3.3): measure a few iterations per device and
    // reduce to the Percent factors of Equation 1.
    let pairs = (Dataset::TwoBsm.ligand_atoms() * Dataset::TwoBsm.receptor_atoms()) as u64;
    let times =
        warmup_times(node.gpus(), gpusim::WorkProfile::pairs(pairs), WarmupConfig::default());
    let percents = percent_factors(&times);
    println!("\nwarm-up phase (Equation 1):");
    for (i, (t, p)) in times.iter().zip(&percents).enumerate() {
        println!(
            "  GPU {i} ({}): warm-up {:.4}s -> Percent = {:.3}",
            node.properties(i).name,
            t,
            p
        );
    }
    node.reset();

    // Now the full comparison, with real scoring on host threads and
    // virtual time from the device model.
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(8).seed(99).build();
    let params = metaheur::m1(0.5);

    let strategies = [
        Strategy::CpuOnly,
        Strategy::HomogeneousSplit,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        Strategy::DynamicQueue { chunk: 128 },
        Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 },
    ];

    println!("\nstrategy comparison ({} on {} spots):", params.name, screen.spots().len());
    let mut baseline = f64::NAN;
    for strat in strategies {
        let out = screen.run(RunSpec::on_node(&params, &node, strat));
        if matches!(strat, Strategy::CpuOnly) {
            baseline = out.virtual_time;
        }
        println!(
            "  {:<28} {:>10.4} virtual s   speedup vs OpenMP {:>7.1}x   best {:.2}",
            strat.label(),
            out.virtual_time,
            baseline / out.virtual_time,
            out.best.score
        );
    }
    println!("\n(the search trajectory — and best score — is identical under every");
    println!(" strategy: scheduling only changes WHERE conformations are scored)");
}
