//! Produce a structured trace of a Table-7-style run: the 2BSM screening
//! workload on the heterogeneous Hertz node (Tesla K40c + GeForce GTX 580)
//! under the warm-up-based heterogeneous split, instrumented with
//! `vstrace`.
//!
//! Writes two artifacts to the current directory (or the directory given
//! as the first argument):
//!
//! - `trace.json` — chrome-trace JSON; open in `chrome://tracing` or
//!   <https://ui.perfetto.dev>;
//! - `trace_summary.txt` — the plain-text summary (per-device
//!   utilization, makespan breakdown, batch-size histogram).
//!
//! The example validates its own output: the exported JSON is parsed back
//! with `vstrace::json::parse` and the per-device busy totals are checked
//! against the simulated device clocks.
//!
//! Run with: `cargo run --release -p vs-examples --example trace_run`

use vscreen::prelude::*;
use vstrace::json::{parse, Value};
use vstrace::{chrome_trace_json, text_summary, Trace};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let node = platform::hertz();
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(6).seed(42).build();
    let params = metaheur::m1(0.2);
    let strategy = Strategy::HeterogeneousSplit {
        warmup: WarmupConfig { iterations: 2, ..Default::default() },
    };

    println!(
        "tracing {} on node {} ({} spots, {} pairs/eval)",
        params.name,
        node.name(),
        screen.spots().len(),
        screen.pairs_per_eval()
    );

    let trace = Trace::new();
    let out = screen.run(RunSpec::on_node(&params, &node, strategy).traced(&trace));
    println!(
        "run done: best {:.2}, {} evaluations, {:.4} virtual s",
        out.best.score, out.evaluations, out.virtual_time
    );

    let data = trace.snapshot();
    assert!(data.dropped == 0, "ring overflow dropped {} events", data.dropped);

    // Busy totals from the event stream must agree with the device clocks.
    for dev in node.gpus() {
        let busy = data.device_busy_s(dev.id() as u32);
        let clock = dev.clock();
        assert!(
            (busy - clock).abs() <= 1e-9 * clock.max(1.0),
            "device {} busy {} != clock {}",
            dev.id(),
            busy,
            clock
        );
    }

    // Export, then parse the JSON back and re-check the busy totals from
    // the serialized document — what scripts/trace_report.sh relies on.
    let json = chrome_trace_json(&data);
    let doc = parse(&json).expect("exported chrome trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    for dev in node.gpus() {
        let busy_us: f64 = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("busy")
                    && e.get("tid").and_then(Value::as_num) == Some(dev.id() as f64)
            })
            .filter_map(|e| e.get("dur").and_then(Value::as_num))
            .sum();
        let clock_us = dev.clock() * 1e6;
        assert!(
            (busy_us - clock_us).abs() <= 1e-3 * clock_us.max(1.0),
            "device {} exported busy {busy_us} us != clock {clock_us} us",
            dev.id()
        );
        println!(
            "  {:<16} busy {:>10.1} us in trace.json (clock {:>10.1} us) ok",
            dev.name(),
            busy_us,
            clock_us
        );
    }

    let json_path = format!("{out_dir}/trace.json");
    let summary_path = format!("{out_dir}/trace_summary.txt");
    std::fs::write(&json_path, &json).expect("write trace.json");
    let summary = text_summary(&data);
    std::fs::write(&summary_path, &summary).expect("write trace_summary.txt");

    println!("\n{summary}");
    println!("wrote {json_path} ({} events) and {summary_path}", data.len());
}
