//! Watch the work-stealing node runtime absorb a mid-run GPU fault.
//!
//! Builds a heterogeneous Hertz node (4-core Xeon host + Tesla K40c +
//! GeForce GTX 580) whose three lanes all pull from the stealing runtime,
//! runs the warm-up so Equation 1 fixes the deque weights, then degrades
//! the GTX 580 4x *after* the weights froze. The healthy lanes steal the
//! stranded chunks; every steal lands on the trace as a `JobMigrated`
//! instant event.
//!
//! Writes `steal_trace.json` (chrome-trace JSON; open in
//! <https://ui.perfetto.dev>) to the current directory or the directory
//! given as the first argument.
//!
//! The example validates its own output: per-device busy totals in the
//! event stream are checked against both the `gpusim::Timeline` segments
//! and the simulated device clocks, and the exported JSON must parse back
//! and contain the steal events.
//!
//! Run with: `cargo run --release -p vs-examples --example runtime_steal`

use metaheur::BatchEvaluator;
use std::sync::Arc;
use vscreen::prelude::*;
use vsmath::{RigidTransform, RngStream};
use vstrace::json::{parse, Value};
use vstrace::{chrome_trace_json, Event, Trace};

fn confs(n: usize, rng: &mut RngStream) -> Vec<vsmol::Conformation> {
    (0..n)
        .map(|_| {
            vsmol::Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0)
        })
        .collect()
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let node = platform::hertz();
    let receptor = vsmol::synth::synth_receptor("rec", 400, 11);
    let ligand = vsmol::synth::synth_ligand("lig", 12, 12);
    let scorer = Arc::new(vsscore::Scorer::new(&receptor, &ligand, Default::default()));

    // The whole node steals: host CPU lane plus both GPUs.
    let mut devices = vec![node.cpu().clone()];
    devices.extend(node.gpus().iter().cloned());
    let warmup = WarmupConfig::default();
    let trace = Trace::new();
    // The timeline carries the trace so every recorded segment also lands
    // on the event stream as a DeviceBusy.
    let timeline = Arc::new(gpusim::Timeline::new().with_trace(trace.clone()));
    let mut eval = vsched::DeviceEvaluator::new(
        devices.clone(),
        scorer,
        Strategy::WorkSteal { warmup, divisor: 2 },
    )
    .with_timeline(timeline.clone())
    .with_trace(trace.clone());

    let mut rng = RngStream::from_seed(2016);

    // Warm-up generations: Equation 1 measures the lanes and freezes the
    // deque weights.
    for _ in 0..warmup.iterations {
        eval.evaluate(&mut confs(2048, &mut rng));
    }
    println!("warm-up done: Eq. 1 weights {:?}", eval.weights());

    // The GTX 580 degrades 4x after its weight froze — thermal throttling
    // mid-campaign. Its seeded deque share is now 4x too large.
    let victim = &node.gpus()[1];
    victim.set_slowdown(4.0);
    println!("injected 4x slowdown on {}", victim.name());

    // Big post-fault generations: plenty of occupancy-floor chunks for the
    // healthy lanes to steal.
    for _ in 0..6 {
        eval.evaluate(&mut confs(16 * 1024, &mut rng));
    }

    let stats = eval.steal_stats();
    println!(
        "runtime claimed {} chunks, {} of them steals ({} conformations migrated)",
        stats.chunks, stats.steals, stats.stolen_items
    );
    assert!(stats.steals > 0, "a 4x straggler lane must trigger steals");

    // -- Self-validation ---------------------------------------------------

    let data = trace.snapshot();
    assert_eq!(data.dropped, 0, "ring overflow dropped events");

    // Busy totals must agree three ways: event stream, timeline segments,
    // device clocks.
    let lanes = timeline.device_stats();
    for dev in &devices {
        let clock = dev.clock();
        let from_events = data.device_busy_s(dev.id() as u32);
        let from_timeline =
            lanes.iter().find(|l| l.device == dev.id()).map(|l| l.busy_s).unwrap_or_default();
        assert!(
            (from_events - clock).abs() <= 1e-9 * clock.max(1.0),
            "{}: events {} != clock {}",
            dev.name(),
            from_events,
            clock
        );
        assert!(
            (from_timeline - clock).abs() <= 1e-9 * clock.max(1.0),
            "{}: timeline {} != clock {}",
            dev.name(),
            from_timeline,
            clock
        );
        println!(
            "  {:<22} busy {:>9.4} vs (events = timeline = clock, {} items)",
            dev.name(),
            clock,
            dev.stats().items
        );
    }

    // The steals are on the trace, between real lanes of this node.
    let steals: Vec<(u32, u32)> = data
        .payloads()
        .into_iter()
        .filter_map(|e| match e {
            Event::JobMigrated { from_node, to_node, .. } => Some((from_node, to_node)),
            _ => None,
        })
        .collect();
    let ids: Vec<u32> = devices.iter().map(|d| d.id() as u32).collect();
    assert_eq!(steals.len() as u64, stats.steals);
    for &(from, to) in &steals {
        assert!(ids.contains(&from) && ids.contains(&to) && from != to);
    }

    // Export, parse back, confirm the steal events survived serialization.
    let json = chrome_trace_json(&data);
    let doc = parse(&json).expect("exported chrome trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    let exported_steals = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("JobMigrated"))
        .count();
    assert_eq!(exported_steals, steals.len(), "steal events lost in export");

    let json_path = format!("{out_dir}/steal_trace.json");
    std::fs::write(&json_path, &json).expect("write steal_trace.json");
    println!(
        "\nwrote {json_path} ({} events, {} JobMigrated) — makespan {:.4} virtual s",
        data.len(),
        exported_steals,
        eval.makespan()
    );
}
