//! Offline mini-`proptest`.
//!
//! A deterministic random-case test runner implementing the subset of the
//! proptest API the workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, `pat in strategy` arguments,
//! range / tuple / [`Just`] / [`any`] strategies, `prop_map`,
//! [`prop_oneof!`], `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and message only) and sampling is driven by a fixed
//! per-test seed, so runs are fully reproducible.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: splitmix64(seed) }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Derive a stable 64-bit seed from a test's path string.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A source of random values. Object-safe; combinators require `Sized`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, why, pred }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    why: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.why);
    }
}

/// Boxed, type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.index(self.0.len());
        self.0[i].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vectors of `elem` with `len` elements.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    );
                    $crate::__proptest_case! { (rng) (case) ($($args)*) $body }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (($rng:ident) ($case:ident) ($($arg:pat in $strat:expr),* $(,)?) $body:block) => {
        $(let $arg = $crate::Strategy::sample(&($strat), &mut $rng);)*
        let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
            $body
            ::core::result::Result::Ok(())
        })();
        if let ::core::result::Result::Err(e) = outcome {
            panic!("proptest case #{} failed: {}", $case, e);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?} ({} != {})",
            left,
            right,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} == {:?} ({} == {})",
            left,
            right,
            stringify!($a),
            stringify!($b)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let s = (0.0..1.0f64, 1usize..10);
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..10_000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::new(3);
        let s = crate::collection::vec(0.0..1.0f64, 2..6);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0.0..1.0f64, n in 1usize..8, flag in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..8).contains(&n));
            prop_assert_eq!(flag as usize * 2 % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1usize),
            (2usize..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 1 || (20..50).contains(&v));
        }
    }
}
