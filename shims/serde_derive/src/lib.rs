//! No-op stand-in for `serde_derive`, used when building offline.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! serializes anything (there is no serializer dependency), so the derive
//! only needs to *accept* the syntax. The companion `serde` shim provides
//! blanket implementations of the marker traits, so these macros can emit
//! an empty token stream.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
