//! Offline stand-in for `serde`.
//!
//! The workspace tags types with `Serialize`/`Deserialize` for forward
//! compatibility but contains no serializer, so the traits are pure
//! markers here. Blanket impls make every type satisfy them; the derive
//! macros (re-exported under the `derive` feature) emit nothing.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_everything() {
        fn is_serialize<T: super::Serialize>() {}
        fn is_deserialize<T: for<'de> super::Deserialize<'de>>() {}
        is_serialize::<Vec<u8>>();
        is_deserialize::<String>();
    }
}
