//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `sample_size`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — on
//! top of a simple wall-clock harness: per bench it calibrates an
//! iteration count, takes `sample_size` timed samples, and prints the
//! median time per iteration (plus throughput when configured).
//!
//! No statistical analysis, HTML reports, or baseline comparison; output
//! goes to stdout as one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work units per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<N: Display, P: Display>(function_id: N, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> BenchmarkId {
        BenchmarkId { id: s.clone() }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`: calibrate an iteration count targeting a few
    /// milliseconds per sample, then record `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: grow the per-sample iteration count until one
        // sample takes at least ~2 ms (or a single iteration dominates).
        let mut iters: u64 = 1;
        let per_sample_target = Duration::from_millis(2);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= per_sample_target || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = per_sample_target.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.5, 8.0)).ceil() as u64
            };
        }

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t.elapsed() / iters as u32);
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(group: Option<&str>, id: &str, median: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{full:<56} time: {:>10}/iter{thrpt}", format_duration(median));
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 20;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: DEFAULT_SAMPLES, last_median: Duration::ZERO };
        f(&mut b);
        report(None, id, b.last_median, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing sample-size/throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, last_median: Duration::ZERO };
        f(&mut b);
        report(Some(&self.name), &id.id, b.last_median, self.throughput);
        self
    }

    pub fn bench_with_input<T: ?Sized, I: Into<BenchmarkId>, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, last_median: Duration::ZERO };
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.last_median, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
