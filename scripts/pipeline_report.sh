#!/usr/bin/env bash
# Produce and validate the pipelined-engine artifact: runs the
# pipeline_snapshot bench (charged lockstep vs the stage pipeline at
# depths 1/2/4 on the Hertz GPUs, which asserts bit-identical search
# results, cross-checks trace busy/idle totals against the device clocks,
# and gates a >= 25% relative device-idle drop with no makespan
# regression), then sanity-checks the emitted JSON. Fails on malformed or
# missing output.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/BENCH_pipeline.json}"
mkdir -p "$(dirname "$OUT")"

echo "==> pipeline_snapshot -> $OUT"
cargo run --release -q -p vs-bench --bin pipeline_snapshot -- "$OUT"

[ -s "$OUT" ] || { echo "ERROR: $OUT missing or empty" >&2; exit 1; }
grep -q '"bench": "pipeline"' "$OUT" || { echo "ERROR: $OUT is not a pipeline snapshot" >&2; exit 1; }
grep -q '"mode": "lockstep"' "$OUT" || { echo "ERROR: $OUT has no lockstep baseline" >&2; exit 1; }
grep -q '"mode": "pipelined:4"' "$OUT" || { echo "ERROR: $OUT has no pipelined modes" >&2; exit 1; }
grep -q '"idle_drop_rel"' "$OUT" || { echo "ERROR: $OUT has no idle-drop figure" >&2; exit 1; }

echo "==> pipeline report OK: $OUT ($(wc -c < "$OUT") bytes)"
