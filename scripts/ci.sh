#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy"
cargo clippy --workspace -- -D warnings

echo "==> xlint (repo invariants: SAFETY comments, Relaxed allowlist, no-panic policy, unsafe attrs)"
# Violations print as file:line: rule: message and fail the build.
cargo run -q --release -p xlint -- .

echo "==> vscheck self-tests (model checker: seeded mutations + replay)"
cargo test -q -p vscheck

echo "==> vscheck model tests (exhaustive interleavings of the concurrency cores)"
# Bounded by each test's Config (preemption bound + schedule budget) so the
# three suites together stay well under a minute.
cargo test -q -p vsscore --features vscheck-model model_
cargo test -q -p vsched --features vscheck-model model_
cargo test -q -p vstrace --features vscheck-model model_
cargo test -q -p metaheur --features vscheck-model model_
cargo test -q -p vscluster --features vscheck-model model_

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> scheduler snapshot cell (Percent split vs work stealing; gates the steal-gain bars)"
cargo run -q --release -p vs-bench --bin sched_snapshot -- target/BENCH_sched.json

echo "==> trace report"
scripts/trace_report.sh

echo "==> steal report (work-stealing runtime under a mid-run fault)"
scripts/steal_report.sh

echo "==> grid report (potential-grid accuracy + speedup gates)"
scripts/grid_report.sh

echo "==> pipeline report (lockstep vs pipelined engine; gates the idle-fraction drop)"
scripts/pipeline_report.sh

echo "==> campaign report (multi-tenant service under bursty traffic; gates latency, utilization, cache)"
scripts/campaign_report.sh

echo "==> OK"
