#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy"
cargo clippy --workspace -- -D warnings

echo "==> xlint (static analysis: 8 rules on the token-tree lexer; DESIGN.md §14)"
# Violations print as file:line: rule: message and fail the build. The JSON
# report (including the model-coverage table) lands in target/ for CI to
# archive; in --json mode stdout carries the same bytes the tool writes.
mkdir -p target
cargo run -q --release -p xlint -- --json . > target/XLINT_REPORT.json
covered=$(grep -o '"covered": [0-9]*' target/XLINT_REPORT.json | grep -o '[0-9]*$')
baseline=$(cat scripts/xlint_coverage_baseline)
if [ "$covered" -lt "$baseline" ]; then
  echo "xlint: model coverage regressed: $covered covered modules < baseline $baseline" >&2
  exit 1
elif [ "$covered" -gt "$baseline" ]; then
  # Coverage may only grow: ratchet the checked-in baseline forward.
  echo "$covered" > scripts/xlint_coverage_baseline
  echo "xlint: model coverage grew to $covered modules (baseline ratcheted)"
fi

echo "==> vscheck + xlint self-tests (seeded mutations + replay on both checkers)"
cargo test -q -p vscheck
cargo test -q -p xlint

echo "==> vscheck model tests (exhaustive interleavings of the concurrency cores)"
# Bounded by each test's Config (preemption bound + schedule budget) so the
# three suites together stay well under a minute.
cargo test -q -p vsscore --features vscheck-model model_
cargo test -q -p vsched --features vscheck-model model_
cargo test -q -p vstrace --features vscheck-model model_
cargo test -q -p metaheur --features vscheck-model model_
cargo test -q -p vscluster --features vscheck-model model_

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> scheduler snapshot cell (Percent split vs work stealing; gates the steal-gain bars)"
cargo run -q --release -p vs-bench --bin sched_snapshot -- target/BENCH_sched.json

echo "==> trace report"
scripts/trace_report.sh

echo "==> steal report (work-stealing runtime under a mid-run fault)"
scripts/steal_report.sh

echo "==> grid report (potential-grid accuracy + speedup gates)"
scripts/grid_report.sh

echo "==> pipeline report (lockstep vs pipelined engine; gates the idle-fraction drop)"
scripts/pipeline_report.sh

echo "==> campaign report (multi-tenant service under bursty traffic; gates latency, utilization, cache)"
scripts/campaign_report.sh

echo "==> OK"
