#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy"
cargo clippy --workspace -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> trace report"
scripts/trace_report.sh

echo "==> OK"
