#!/usr/bin/env bash
# Produce and validate the campaign-service artifact: runs the
# campaign_snapshot bench (bursty multi-tenant traffic on an elastic
# 4-node Hertz fleet with one join and one leave, which gates interactive
# p99 queue latency, >= 85% fleet utilization, zero lost jobs, and a
# >= 100x cache-hit resubmission speedup), then sanity-checks the emitted
# JSON. Fails on malformed or missing output.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/BENCH_campaign.json}"
mkdir -p "$(dirname "$OUT")"

echo "==> campaign_snapshot -> $OUT"
cargo run --release -q -p vs-bench --bin campaign_snapshot -- "$OUT"

[ -s "$OUT" ] || { echo "ERROR: $OUT missing or empty" >&2; exit 1; }
grep -q '"bench": "campaign"' "$OUT" || { echo "ERROR: $OUT is not a campaign snapshot" >&2; exit 1; }
grep -q '"scenario": "bursty_elastic"' "$OUT" || { echo "ERROR: $OUT has no bursty-traffic cell" >&2; exit 1; }
grep -q '"scenario": "cache_resubmission"' "$OUT" || { echo "ERROR: $OUT has no cache cell" >&2; exit 1; }
grep -q '"interactive_p99_s"' "$OUT" || { echo "ERROR: $OUT has no interactive latency figure" >&2; exit 1; }
grep -q '"hit_speedup"' "$OUT" || { echo "ERROR: $OUT has no cache speedup figure" >&2; exit 1; }
grep -q '"warm_device_evals": 0' "$OUT" || { echo "ERROR: warm resubmission touched the device" >&2; exit 1; }

echo "==> campaign report OK: $OUT ($(wc -c < "$OUT") bytes)"
