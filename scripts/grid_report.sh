#!/usr/bin/env bash
# Produce and gate the potential-grid scoring artifact: runs the
# grid_accuracy harness (voxel-pitch sweep of Grid vs the exact Fused
# kernel on the Table 5 complexes), which gates the p99 grid-vs-Fused
# error against the DESIGN §11 budget at the default pitch and requires
# Grid >= 3x Fused poses/sec on the 8609-atom complex. Fails on a gate
# violation or malformed output.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-target/BENCH_grid.json}"

echo "==> grid_accuracy harness -> $OUT"
cargo run --release -q -p vs-bench --bin grid_accuracy -- "$OUT"

[ -s "$OUT" ] || { echo "ERROR: $OUT missing or empty" >&2; exit 1; }
grep -q '"bench": "grid_accuracy"' "$OUT" || { echo "ERROR: $OUT malformed" >&2; exit 1; }
grep -q '"grid_over_fused"' "$OUT" || { echo "ERROR: $OUT has no speedup rows" >&2; exit 1; }

echo "==> grid report OK: $OUT ($(wc -c < "$OUT") bytes)"
