#!/usr/bin/env bash
# Produce and validate the work-stealing runtime artifact: runs the
# runtime_steal example (which injects a 4x mid-run GPU fault, asserts
# steals happen, and cross-checks busy totals against the timeline and the
# device clocks), then sanity-checks the emitted chrome trace. Fails on
# malformed or missing output.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-target/steal_report}"
mkdir -p "$OUT_DIR"

echo "==> runtime_steal example -> $OUT_DIR"
cargo run --release -q -p vs-examples --example runtime_steal -- "$OUT_DIR"

JSON="$OUT_DIR/steal_trace.json"
[ -s "$JSON" ] || { echo "ERROR: $JSON missing or empty" >&2; exit 1; }
grep -q '"traceEvents"' "$JSON" || { echo "ERROR: $JSON has no traceEvents" >&2; exit 1; }
grep -q '"JobMigrated"' "$JSON" || { echo "ERROR: $JSON recorded no steals" >&2; exit 1; }

echo "==> steal report OK: $JSON ($(wc -c < "$JSON") bytes)"
