#!/usr/bin/env bash
# Rebuild and run the scoring-kernel snapshot, writing BENCH_scoring.json
# (kernel -> poses/sec at both Table 5 complex sizes). Pass an alternate
# output path as $1.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p vs-bench --bin bench_snapshot -- "${1:-BENCH_scoring.json}"
