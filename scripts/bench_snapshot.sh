#!/usr/bin/env bash
# Rebuild and run the performance snapshots:
#   BENCH_scoring.json — kernel -> poses/sec at both Table 5 complex sizes;
#   BENCH_sched.json   — heterogeneous scheduler cell: static Percent split
#                        vs the work-stealing runtime vs the learned cost
#                        oracle — healthy, 4x mid-run straggler, and a
#                        drift scenario (4x slowdown that recovers). Gates
#                        the >= 1.3x steal gain, oracle-beats-frozen under
#                        drift, oracle-steals-less-than-worksteal, and
#                        bit-identical oracle re-runs.
# Pass an alternate output directory as $1 (default: repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-.}"
mkdir -p "$OUT_DIR"

cargo run --release -p vs-bench --bin bench_snapshot -- "$OUT_DIR/BENCH_scoring.json"
cargo run --release -p vs-bench --bin sched_snapshot -- "$OUT_DIR/BENCH_sched.json"
