#!/usr/bin/env bash
# Produce and validate the run-trace artifacts: runs the trace_run example
# (which self-checks busy totals against the device clocks and re-parses
# its own JSON), then sanity-checks the emitted files. Fails on malformed
# or missing output.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-target/trace_report}"
mkdir -p "$OUT_DIR"

echo "==> trace_run example -> $OUT_DIR"
cargo run --release -q -p vs-examples --example trace_run -- "$OUT_DIR"

JSON="$OUT_DIR/trace.json"
SUMMARY="$OUT_DIR/trace_summary.txt"

[ -s "$JSON" ] || { echo "ERROR: $JSON missing or empty" >&2; exit 1; }
[ -s "$SUMMARY" ] || { echo "ERROR: $SUMMARY missing or empty" >&2; exit 1; }

grep -q '"traceEvents"' "$JSON" || { echo "ERROR: $JSON has no traceEvents" >&2; exit 1; }
grep -q '"ph": "X"' "$JSON" || { echo "ERROR: $JSON has no complete events" >&2; exit 1; }
grep -q 'virtual makespan' "$SUMMARY" || { echo "ERROR: $SUMMARY malformed" >&2; exit 1; }
grep -q 'util %' "$SUMMARY" || { echo "ERROR: $SUMMARY lacks utilization table" >&2; exit 1; }

echo "==> trace report OK: $JSON ($(wc -c < "$JSON") bytes), $SUMMARY"
