//! Integration of the cluster extension with the full screening stack,
//! driven through the campaign service's single submission API.

use vscluster::{synthetic_library, Campaign, NetModel, Service, ServiceConfig, SimCluster};
use vscreen::prelude::*;

fn screen(cluster: SimCluster, campaign: Campaign) -> vscluster::CampaignReport {
    let mut svc = Service::new(cluster, ServiceConfig::default());
    svc.submit(campaign);
    svc.drain()
}

#[test]
fn campaign_composes_cluster_and_intra_node_scheduling() {
    let library = synthetic_library(12, &metaheur::m3(0.5), 1);
    let cluster = SimCluster::uniform(2, NetModel::infiniband(), platform::hertz);
    let strategies = [
        Strategy::HomogeneousSplit,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
    ];
    let mut makespans = Vec::new();
    for s in strategies {
        let r = screen(cluster.clone(), Campaign::library(3264, 32, library.clone(), s));
        assert!(r.makespan > 0.0);
        assert!(r.speedup() > 1.3, "{}: {}", s.label(), r.speedup());
        makespans.push(r.makespan);
    }
    // The intra-node heterogeneous algorithm also helps at cluster scale.
    assert!(
        makespans[1] < makespans[0],
        "het intra-node schedule should shorten the campaign: {makespans:?}"
    );
}

#[test]
fn mixed_metaheuristic_campaign() {
    // Jobs of different metaheuristics (the "different molecular
    // interactions" of the abstract) share one cluster.
    let mut jobs = synthetic_library(6, &metaheur::m1(0.5), 2);
    jobs.extend({
        let mut heavy = synthetic_library(2, &metaheur::m4(0.1), 3);
        for (i, j) in heavy.iter_mut().enumerate() {
            j.id = 6 + i;
        }
        heavy
    });
    let cluster = SimCluster::uniform(2, NetModel::infiniband(), platform::hertz);
    let r = screen(cluster, Campaign::library(3264, 16, jobs, Strategy::HomogeneousSplit));
    assert_eq!(r.assignment.len(), 8);
    // LPT expansion sorts the two heavy M4 jobs into assignment slots 0
    // and 1; longest-first dispatch must spread them across nodes.
    assert_ne!(r.assignment[0], r.assignment[1], "heavy jobs not spread: {:?}", r.assignment);
}

#[test]
fn cluster_of_jupiters_screens_faster_than_one() {
    let library = synthetic_library(16, &metaheur::m2(0.5), 4);
    let campaign = || Campaign::library(8609, 32, library.clone(), Strategy::HomogeneousSplit);
    let one = screen(SimCluster::uniform(1, NetModel::infiniband(), platform::jupiter), campaign());
    let four =
        screen(SimCluster::uniform(4, NetModel::infiniband(), platform::jupiter), campaign());
    assert!(four.makespan < one.makespan / 2.5, "{} vs {}", four.makespan, one.makespan);
}
