//! Integration coverage for the extension features: SDF libraries, the
//! extension search engines on real scoring, timelines, energy accounting
//! and the machine-readable report.

use vscreen::prelude::*;

#[test]
fn sdf_library_roundtrips_into_campaign() {
    // Build a library, serialize to SDF, parse it back, screen it.
    let lib: Vec<Molecule> = (0..3)
        .map(|i| vsmol::synth::synth_ligand(&format!("sdf-lig-{i}"), 10 + i, 900 + i as u64))
        .collect();
    let text = vsmol::sdf::write(&lib);
    let parsed = vsmol::sdf::parse(&text, "lib").expect("valid SDF");
    assert_eq!(parsed.len(), 3);

    let receptor = vsmol::synth::synth_receptor("r", 400, 4);
    let node = platform::hertz();
    let ranking = vscreen::library::screen_library(
        &receptor,
        &parsed,
        &metaheur::m1(0.03),
        &node,
        Strategy::HomogeneousSplit,
        2,
        5,
    );
    assert_eq!(ranking.hits.len(), 3);
    assert!(ranking.hits[0].ligand_name.starts_with("sdf-lig-"));
}

#[test]
fn pso_and_tabu_run_on_real_scorer() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(6).build();
    let spots = screen.spots().to_vec();
    let scorer = screen.scorer();

    let spec = vsched::EvaluatorSpec::PooledCpu { threads: 4 };
    let pso = metaheur::PsoParams { swarm_per_spot: 16, iterations: 8, ..Default::default() };
    let mut ev = spec.build(scorer.clone());
    let r_pso = metaheur::run_pso(&pso, &spots, &mut ev, 1);
    assert!(r_pso.best.score < 0.0, "PSO found no binding: {}", r_pso.best.score);

    let tabu = metaheur::TabuParams { iterations: 15, neighbors: 8, ..Default::default() };
    let mut ev = spec.build(scorer.clone());
    let r_tabu = metaheur::run_tabu(&tabu, &spots, &mut ev, 1);
    assert!(r_tabu.best.score < 0.0, "Tabu found no binding: {}", r_tabu.best.score);
}

#[test]
fn memetic_hybrid_on_real_scorer() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(8).build();
    let spots = screen.spots().to_vec();
    let p = metaheur::MemeticParams {
        name: "GA+Tabu".into(),
        ga: metaheur::m1(0.05),
        tabu: metaheur::TabuParams { iterations: 6, neighbors: 8, ..Default::default() },
        epochs: 2,
    };
    let mut ev = vsched::EvaluatorSpec::PooledCpu { threads: 4 }.build(screen.scorer());
    let r = metaheur::run_memetic(&p, &spots, &mut ev, 2);
    assert_eq!(r.evaluations, p.evals_per_spot() * 2);
    assert!(r.best.score < 0.0);
}

#[test]
fn lamarckian_improves_real_docking() {
    // Gradient descent on the real LJ landscape must not lose to the same
    // budget spent on random perturbation.
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(9).build();
    let lam = metaheur::MetaheuristicParams {
        name: "M3-lam".into(),
        improve: metaheur::ImproveStrategy::Lamarckian {
            steps: 1,
            step_size: 0.3,
            angle_step: 0.08,
        },
        improve_fraction: 1.0,
        ..metaheur::m3(0.1)
    };
    let out = screen.run(RunSpec::cpu(&lam, 4));
    assert!(out.best.score < 0.0);
    assert_eq!(out.evaluations, lam.evals_per_spot() as u64 * 2);
}

#[test]
fn energy_and_timeline_cohere_with_times() {
    use vsched::{schedule_trace, schedule_trace_timeline};
    let node = platform::hertz();
    let trace: Vec<u64> = std::iter::repeat_n(64 * 32, 20).collect();
    let pairs = 45 * 3264;
    let strat = Strategy::HomogeneousSplit;
    let plain = schedule_trace(node.cpu(), node.gpus(), &trace, pairs, strat);
    let (tl_report, tl) = schedule_trace_timeline(node.cpu(), node.gpus(), &trace, pairs, strat);
    assert!((plain.makespan - tl_report.makespan).abs() < 1e-12);
    assert!((plain.energy_joules - tl_report.energy_joules).abs() < 1e-9);
    // Timeline idle + busy = makespan per device.
    for g in node.gpus() {
        let busy: f64 =
            tl.segments().iter().filter(|s| s.device == g.id()).map(|s| s.end - s.start).sum();
        assert!((busy + tl.idle_time(g.id()) - tl.makespan()).abs() < 1e-9);
    }
}

#[test]
fn full_report_reflects_paper_shape() {
    let r = vscreen::report::full_report(experiment::ExperimentScale::Full);
    // Hertz tables carry larger heterogeneous gains than Jupiter tables.
    let gain = |system: &str| -> f64 {
        r.tables
            .iter()
            .filter(|t| t.system == system)
            .flat_map(|t| t.rows.iter())
            .map(|row| row.speedup_het_vs_hom())
            .sum::<f64>()
            / 8.0
    };
    assert!(
        gain("Hertz") > gain("Jupiter") + 0.2,
        "Hertz {} vs Jupiter {}",
        gain("Hertz"),
        gain("Jupiter")
    );
    let json = vscreen::report::to_json(&r);
    assert!(json.len() > 1000);
}

#[test]
fn tuning_on_real_scorer_improves_or_matches_base() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(12).build();
    let spots = screen.spots().to_vec();
    let scorer = screen.scorer();
    let base = metaheur::m1(0.03);
    let grid = metaheur::TuningGrid {
        mutation_probs: vec![base.mutation_prob, 0.5],
        max_shifts: vec![base.max_shift],
        max_angles: vec![base.max_angle],
    };
    let spec = vsched::EvaluatorSpec::PooledCpu { threads: 4 };
    let report = metaheur::tune(&base, &grid, &spots, || spec.build(scorer.clone()), 3, 1);
    let base_point = report
        .points
        .iter()
        .find(|p| p.mutation_prob == base.mutation_prob)
        .expect("base evaluated");
    assert!(report.best.mean_best <= base_point.mean_best);
    let tuned = report.apply_to(&base);
    assert_eq!(tuned.population_per_spot, base.population_per_spot);
}
