//! Acceptance tests for the work-stealing node runtime (ISSUE 5): the
//! virtual-time makespan claims checked on the real Hertz platform model,
//! and the determinism contract checked with real scoring compute through
//! the full `VirtualScreen` pipeline.

use vscreen::prelude::*;
use vstrace::{Event, Trace};

const PAIRS: u64 = 45 * 3264; // 2BSM ligand x receptor pair interactions

/// Generation batches far above the GPUs' occupancy floors (K40c 960,
/// GTX 580 768 warps' worth of items) so deques split into many chunks
/// and steals have granularity to work with.
fn big_trace() -> Vec<u64> {
    std::iter::repeat_n(16 * 1024, 24).collect()
}

fn worksteal() -> Strategy {
    Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 }
}

fn percent_split() -> Strategy {
    Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }
}

/// Acceptance: with one GPU degrading 4x *after* the warm-up froze its
/// Eq. 1 weight, the stealing runtime must finish at least 1.3x faster
/// than the frozen Percent split.
#[test]
fn straggler_makespan_recovers_by_at_least_1_3x() {
    let node = platform::hertz();
    let onset = WarmupConfig::default().iterations + 2;
    let faults = [1.0, 4.0];
    let run = |strategy| {
        vsched::schedule_trace_faulty(
            node.cpu(),
            node.gpus(),
            &big_trace(),
            PAIRS,
            strategy,
            &faults,
            onset,
            &Trace::disabled(),
        )
        .makespan
    };
    let frozen = run(percent_split());
    let stealing = run(worksteal());
    let gain = frozen / stealing;
    assert!(gain >= 1.3, "steal gain only {gain:.3}: {stealing} vs frozen {frozen}");
}

/// Acceptance: on a healthy node the stealing runtime is no worse than 5%
/// off the static Percent split (it is typically *faster*: the drain
/// reclaims the warm-up's equal-split imbalance).
#[test]
fn healthy_makespan_within_five_percent_of_percent_split() {
    let node = platform::hertz();
    let healthy = [1.0, 1.0];
    let run = |strategy| {
        vsched::schedule_trace_faulty(
            node.cpu(),
            node.gpus(),
            &big_trace(),
            PAIRS,
            strategy,
            &healthy,
            0,
            &Trace::disabled(),
        )
        .makespan
    };
    let split = run(percent_split());
    let stealing = run(worksteal());
    let ratio = stealing / split;
    assert!(ratio <= 1.05, "healthy stealing {ratio:.3}x the Percent split");
    assert!(ratio >= 0.5, "implausible speedup {ratio:.3} — accounting bug?");
}

/// Acceptance: steals are observable — the degraded lane emits
/// `JobMigrated` events naming real device ids of the node.
#[test]
fn steals_surface_as_job_migrated_events() {
    let node = platform::hertz();
    let events = Trace::new();
    vsched::schedule_trace_faulty(
        node.cpu(),
        node.gpus(),
        &big_trace(),
        PAIRS,
        worksteal(),
        &[1.0, 4.0],
        WarmupConfig::default().iterations,
        &events,
    );
    let ids: Vec<u32> = node.gpus().iter().map(|g| g.id() as u32).collect();
    let steals: Vec<(u32, u32)> = events
        .snapshot()
        .payloads()
        .into_iter()
        .filter_map(|e| match e {
            Event::JobMigrated { from_node, to_node, .. } => Some((from_node, to_node)),
            _ => None,
        })
        .collect();
    assert!(!steals.is_empty(), "4x lane fault must trigger steals");
    for (from, to) in steals {
        assert_ne!(from, to);
        assert!(ids.contains(&from) && ids.contains(&to), "steal {from}->{to} not on this node");
    }
}

/// Acceptance: real compute through the full pipeline — the work-stealing
/// schedule returns bit-identical results to the serial CPU path for the
/// same seed.
#[test]
fn work_steal_bit_identical_to_serial() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(3).seed(77).build();
    let params = metaheur::m1(0.03);
    let node = platform::hertz();
    let serial = screen.run(RunSpec::on_node(&params, &node, Strategy::CpuOnly));
    let stealing = screen.run(RunSpec::on_node(&params, &node, worksteal()));
    assert_eq!(serial.best.score.to_bits(), stealing.best.score.to_bits());
    assert_eq!(serial.best.pose, stealing.best.pose);
    assert_eq!(serial.evaluations, stealing.evaluations);
}

/// The runtime schedules the *whole* node: under WorkSteal the host CPU
/// is a first-class lane in the steal pool, not just a dispatcher.
#[test]
fn work_steal_charges_the_cpu_lane() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(3).seed(78).build();
    let params = metaheur::m1(0.03);
    let node = platform::hertz();
    screen.run(RunSpec::on_node(&params, &node, worksteal()));
    assert!(node.cpu().clock() > 0.0, "CPU lane never claimed a chunk");
    for g in node.gpus() {
        assert!(g.clock() > 0.0, "GPU lane {} never claimed a chunk", g.name());
    }
}
