//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use vsched::{equal_split, percent_factors, proportional_split};
use vsmath::{Quat, RigidTransform, RngStream, SpatialGrid, Vec3};
use vsmol::{Atom, Element, LjTable, Molecule};
use vsscore::lj::{lj_naive, lj_tiled, Frame, PairTable};

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_quat() -> impl Strategy<Value = Quat> {
    (arb_vec3(1.0), -3.1..3.1f64).prop_map(|(axis, angle)| {
        Quat::from_axis_angle(if axis.norm() < 1e-6 { Vec3::X } else { axis }, angle)
    })
}

fn arb_element() -> impl Strategy<Value = Element> {
    (0..Element::COUNT).prop_map(|i| Element::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- geometry ----

    #[test]
    fn rotation_preserves_length(q in arb_quat(), v in arb_vec3(100.0)) {
        prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-8);
    }

    #[test]
    fn rotation_roundtrip(q in arb_quat(), v in arb_vec3(100.0)) {
        let back = q.conjugate().rotate(q.rotate(v));
        prop_assert!((back - v).max_abs_component() < 1e-8);
    }

    #[test]
    fn quat_composition_associative_on_vectors(
        a in arb_quat(), b in arb_quat(), v in arb_vec3(10.0)
    ) {
        let lhs = (a * b).rotate(v);
        let rhs = a.rotate(b.rotate(v));
        prop_assert!((lhs - rhs).max_abs_component() < 1e-8);
    }

    #[test]
    fn transform_inverse_roundtrip(
        q in arb_quat(), t in arb_vec3(50.0), p in arb_vec3(50.0)
    ) {
        let tf = RigidTransform::new(q, t);
        let back = tf.inverse().apply(tf.apply(p));
        prop_assert!((back - p).max_abs_component() < 1e-7);
    }

    #[test]
    fn transform_preserves_distances(
        q in arb_quat(), t in arb_vec3(50.0), a in arb_vec3(20.0), b in arb_vec3(20.0)
    ) {
        let tf = RigidTransform::new(q, t);
        prop_assert!((tf.apply(a).dist(tf.apply(b)) - a.dist(b)).abs() < 1e-8);
    }

    // ---- spatial grid vs brute force ----

    #[test]
    fn grid_query_matches_brute_force(
        pts in proptest::collection::vec(arb_vec3(15.0), 1..80),
        q in arb_vec3(20.0),
        r in 0.1..8.0f64,
        cell in 0.5..5.0f64,
    ) {
        let grid = SpatialGrid::build(&pts, cell);
        let mut got = grid.within(q, r);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(q) <= r * r)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    // ---- RNG streams ----

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), id in any::<u64>()) {
        let mut a = RngStream::derive(seed, id);
        let mut b = RngStream::derive(seed, id);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn rng_uniform_range_respects_bounds(seed in any::<u64>(), lo in -100.0..0.0f64, width in 0.001..100.0f64) {
        let mut r = RngStream::from_seed(seed);
        let hi = lo + width;
        for _ in 0..16 {
            let x = r.uniform_range(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    // ---- scoring ----

    #[test]
    fn tiled_kernel_matches_naive(
        rec_pts in proptest::collection::vec((arb_vec3(20.0), arb_element()), 1..200),
        lig_pts in proptest::collection::vec((arb_vec3(20.0), arb_element()), 1..20),
    ) {
        let table = PairTable::new(&LjTable::standard());
        let to_frame = |pts: &[(Vec3, Element)]| {
            let mol = Molecule::new(
                "m",
                pts.iter().map(|(p, e)| Atom::new(*p, *e)).collect(),
            );
            Frame::from_molecule(&mol)
        };
        let rec = to_frame(&rec_pts);
        let lig = to_frame(&lig_pts);
        let a = lj_naive(&lig, &rec, &table);
        let b = lj_tiled(&lig, &rec, &table);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{} vs {}", a, b);
    }

    #[test]
    fn lj_energy_is_finite_everywhere(
        a in arb_element(), b in arb_element(), r_sq in 0.0..1e6f64
    ) {
        let t = LjTable::standard();
        let (s2, e4) = t.pair(a, b);
        let e = vsscore::lj::lj_pair(s2, e4, r_sq);
        prop_assert!(e.is_finite());
    }

    // ---- partitioning ----

    #[test]
    fn equal_split_conserves_items(items in 0u64..1_000_000, n in 1usize..32) {
        let s = equal_split(items, n);
        prop_assert_eq!(s.iter().sum::<u64>(), items);
        let max = *s.iter().max().unwrap();
        let min = *s.iter().min().unwrap();
        prop_assert!(max - min <= 1, "equal split uneven: {:?}", s);
    }

    #[test]
    fn proportional_split_conserves_items(
        items in 0u64..1_000_000,
        weights in proptest::collection::vec(0.001..100.0f64, 1..16),
    ) {
        let s = proportional_split(items, &weights);
        prop_assert_eq!(s.iter().sum::<u64>(), items);
        // Each share within 1 of the exact proportional value.
        let total: f64 = weights.iter().sum();
        for (share, w) in s.iter().zip(&weights) {
            let exact = items as f64 * w / total;
            prop_assert!((*share as f64 - exact).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn percent_factors_normalized(
        times in proptest::collection::vec(0.001..1000.0f64, 1..16),
    ) {
        let p = percent_factors(&times);
        prop_assert!(p.iter().all(|&x| x > 0.0 && x <= 1.0 + 1e-12));
        prop_assert!(p.iter().any(|&x| (x - 1.0).abs() < 1e-12), "slowest must be 1.0");
    }

    // ---- conformations ----

    #[test]
    fn perturbation_bounded(
        seed in any::<u64>(),
        shift in 0.0..5.0f64,
        angle in 0.0..1.5f64,
    ) {
        let mut rng = RngStream::from_seed(seed);
        let spot = vsmol::Spot {
            id: 0,
            center: Vec3::ZERO,
            normal: Vec3::Z,
            radius: 10.0,
            anchor_atom: 0,
        };
        let c = vsmol::Conformation::random_at(&spot, &mut rng);
        let p = c.perturbed(shift, angle, &mut rng);
        prop_assert!(c.translation_distance(&p) <= shift + 1e-9);
        prop_assert!(c.rotation_distance(&p) <= angle + 1e-9);
    }

    #[test]
    fn clamped_conformations_stay_in_spot(
        seed in any::<u64>(), tx in -100.0..100.0f64, ty in -100.0..100.0f64
    ) {
        let mut rng = RngStream::from_seed(seed);
        let spot = vsmol::Spot {
            id: 0,
            center: Vec3::new(5.0, 5.0, 5.0),
            normal: Vec3::Z,
            radius: 3.0,
            anchor_atom: 0,
        };
        let c = vsmol::Conformation::new(
            RigidTransform::new(rng.rotation(), Vec3::new(tx, ty, 0.0)),
            0,
        );
        let clamped = c.clamped_to(&spot);
        prop_assert!(clamped.pose.translation.dist(spot.center) <= spot.radius + 1e-9);
    }
}
