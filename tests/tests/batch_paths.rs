//! Cross-path determinism of the batch scoring pipeline: the serial CPU
//! path, the persistent CPU worker pool, and the persistent device workers
//! must produce bit-identical scores for the same batch, on every call —
//! the score-level form of DESIGN §7 schedule-invariance.

use gpusim::{catalog, SimDevice};
use metaheur::{BatchEvaluator, CpuEvaluator};
use std::sync::Arc;
use vsched::{DeviceEvaluator, Strategy};
use vsmath::{RigidTransform, RngStream};
use vsmol::{synth, Conformation};
use vsscore::{Exec, Scorer};

fn scorer() -> Scorer {
    let rec = synth::synth_receptor("r", 450, 2);
    let lig = synth::synth_ligand("l", 13, 3);
    Scorer::new(&rec, &lig, Default::default())
}

fn confs(n: usize, seed: u64) -> Vec<Conformation> {
    let mut rng = RngStream::from_seed(seed);
    (0..n)
        .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(22.0)), 0))
        .collect()
}

fn devices() -> Vec<Arc<SimDevice>> {
    vec![
        Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
        Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        Arc::new(SimDevice::new(2, catalog::geforce_gtx_590())),
    ]
}

/// Every evaluator path, same batches, repeated calls: all score streams
/// bit-identical to the serial reference.
#[test]
fn all_paths_bit_identical_across_repeated_evaluates() {
    let sc = scorer();
    let mut serial = CpuEvaluator::new(sc.clone(), Exec::Serial);
    let mut pooled = CpuEvaluator::new(sc.clone(), Exec::Pool(3));
    let mut device =
        DeviceEvaluator::new(devices(), Arc::new(sc.clone()), Strategy::HomogeneousSplit);
    let mut dynamic =
        DeviceEvaluator::new(devices(), Arc::new(sc), Strategy::DynamicQueue { chunk: 4 });

    for round in 0..4 {
        let reference = confs(5 + 17 * round as usize, round);
        let mut a = reference.clone();
        let mut b = reference.clone();
        let mut c = reference.clone();
        let mut d = reference;
        serial.evaluate(&mut a);
        pooled.evaluate(&mut b);
        device.evaluate(&mut c);
        dynamic.evaluate(&mut d);
        for i in 0..a.len() {
            assert_eq!(a[i].score.to_bits(), b[i].score.to_bits(), "pool, round {round} #{i}");
            assert_eq!(a[i].score.to_bits(), c[i].score.to_bits(), "device, round {round} #{i}");
            assert_eq!(a[i].score.to_bits(), d[i].score.to_bits(), "dynamic, round {round} #{i}");
        }
    }
}

#[test]
fn all_paths_handle_empty_and_single_batches() {
    let sc = scorer();
    let expected = {
        let mut one = confs(1, 99);
        CpuEvaluator::new(sc.clone(), Exec::Serial).evaluate(&mut one);
        one[0].score
    };

    let mut pooled = CpuEvaluator::new(sc.clone(), Exec::Pool(4));
    let mut device = DeviceEvaluator::new(devices(), Arc::new(sc), Strategy::HomogeneousSplit);
    for ev in [&mut pooled as &mut dyn BatchEvaluator, &mut device] {
        ev.evaluate(&mut []);
        let mut one = confs(1, 99);
        ev.evaluate(&mut one);
        assert_eq!(one[0].score.to_bits(), expected.to_bits());
    }
}
