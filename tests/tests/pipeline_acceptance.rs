//! Acceptance tests for the pipelined generational engine (DESIGN.md §12).
//!
//! The pipeline refactor must not move a single bit of the search: the
//! golden values below were captured from the pre-pipeline engine on the
//! Table 5 complexes (2BSM, 2BXG) under all four paper metaheuristics
//! M1–M4, and both the legacy entry points and `run_exec(Lockstep)` are
//! pinned to them. `Pipelined` is then held to bit-identity with
//! `Lockstep` at several channel depths, and a property test sweeps
//! random configurations.

use metaheur::{
    run_exec, run_pipelined, CpuEvaluator, EndCondition, EngineExec, ImproveStrategy,
    MetaheuristicParams, PipelineConfig, RunResult, SelectStrategy, SyntheticEvaluator,
};
use proptest::prelude::*;
use vsmath::Vec3;
use vsmol::{Dataset, Spot};
use vsscore::{Exec, Kernel, ScorerOptions};
use vstrace::Trace;

const ENGINE_SEED: u64 = 2016;

/// Pre-pipeline golden record: (pdb, meta, best bits, evaluations,
/// generations, batch-trace length, batch-trace item sum, last
/// best-history entry bits).
type Golden = (&'static str, &'static str, u64, u64, usize, usize, u64, u64);

/// Pre-pipeline engine outputs for `max_spots(3)`, screen seed 7, the
/// `Grid { spacing: 0.75 }` kernel, engine seed 2016, `paper_suite(0.05)`.
#[allow(clippy::unreadable_literal)]
const GOLDEN: &[Golden] = &[
    ("2BSM", "M1", 0xc015d76adb000000, 576, 2, 3, 576, 0xc015d76adb000000),
    ("2BSM", "M2", 0xc01bfce0f0000000, 768, 1, 4, 768, 0xc01bfce0f0000000),
    ("2BSM", "M3", 0xc01594f1d8000000, 462, 1, 4, 462, 0xc01594f1d8000000),
    ("2BSM", "M4", 0xc0246a82a2000000, 18432, 0, 6, 18432, 0xc0246a82a2000000),
    ("2BXG", "M1", 0xc017ee1240000000, 576, 2, 3, 576, 0xc017ee1240000000),
    ("2BXG", "M2", 0xc017ee1240000000, 768, 1, 4, 768, 0xc017ee1240000000),
    ("2BXG", "M3", 0xc017ee1240000000, 462, 1, 4, 462, 0xc017ee1240000000),
    ("2BXG", "M4", 0xc0205cc108000000, 18432, 0, 6, 18432, 0xc01e0845b0000000),
];

fn golden_screen(dataset: Dataset) -> vscreen::VirtualScreen {
    vscreen::VirtualScreen::builder(dataset)
        .max_spots(3)
        .seed(7)
        .scorer_options(ScorerOptions {
            kernel: Kernel::Grid { spacing: 0.75 },
            ..Default::default()
        })
        .build()
}

fn serial_evaluator(screen: &vscreen::VirtualScreen) -> CpuEvaluator {
    CpuEvaluator::new((*screen.scorer()).clone(), Exec::Serial)
}

fn check_against_golden(run: &RunResult, g: &Golden) {
    let (pdb, meta, best, evals, gens, trace_len, trace_sum, hist_last) = *g;
    let tag = format!("{pdb}/{meta}");
    assert_eq!(run.best.score.to_bits(), best, "{tag}: best score moved");
    assert_eq!(run.evaluations, evals, "{tag}: evaluation count moved");
    assert_eq!(run.generations_run, gens, "{tag}: generation count moved");
    assert_eq!(run.batch_trace.len(), trace_len, "{tag}: batch trace length moved");
    assert_eq!(run.batch_trace.iter().sum::<u64>(), trace_sum, "{tag}: batch trace sum moved");
    assert_eq!(
        run.best_history.last().unwrap().to_bits(),
        hist_last,
        "{tag}: final best-history entry moved"
    );
}

fn dataset_goldens(dataset: Dataset) -> Vec<&'static Golden> {
    GOLDEN.iter().filter(|g| g.0 == dataset.pdb_id()).collect()
}

fn suite_params(meta: &str) -> MetaheuristicParams {
    let suite = metaheur::paper_suite(0.05);
    suite.into_iter().find(|p| p.name == meta).expect("paper suite metaheuristic")
}

#[test]
fn legacy_engine_still_matches_pre_pipeline_goldens() {
    for dataset in Dataset::ALL {
        let screen = golden_screen(dataset);
        let mut ev = serial_evaluator(&screen);
        for g in dataset_goldens(dataset) {
            let params = suite_params(g.1);
            let run = metaheur::run(&params, screen.spots(), &mut ev, ENGINE_SEED);
            check_against_golden(&run, g);
        }
    }
}

#[test]
fn lockstep_exec_matches_pre_pipeline_goldens() {
    // `EngineExec::Lockstep` charges host virtual time but must leave the
    // trajectory — scores, counts, batch program order — untouched.
    for dataset in Dataset::ALL {
        let screen = golden_screen(dataset);
        let mut ev = serial_evaluator(&screen);
        for g in dataset_goldens(dataset) {
            let params = suite_params(g.1);
            let run = run_exec(
                &params,
                screen.spots(),
                &mut ev,
                ENGINE_SEED,
                &[],
                &Trace::disabled(),
                EngineExec::Lockstep,
            );
            check_against_golden(&run, g);
        }
    }
}

#[test]
fn pipelined_matches_lockstep_on_table5_complexes() {
    // The pipelined engine reorders batch submission but must reproduce
    // the lockstep search bit for bit on the real complexes, for every
    // paper metaheuristic and several channel depths.
    for dataset in Dataset::ALL {
        let screen = golden_screen(dataset);
        for g in dataset_goldens(dataset) {
            let params = suite_params(g.1);
            let mut ev = serial_evaluator(&screen);
            let lock = metaheur::run(&params, screen.spots(), &mut ev, ENGINE_SEED);
            for depth in [1, 4] {
                let mut ev = serial_evaluator(&screen);
                let piped = run_pipelined(
                    &params,
                    screen.spots(),
                    &mut ev,
                    ENGINE_SEED,
                    &[],
                    &Trace::disabled(),
                    &PipelineConfig::with_depth(depth),
                );
                let tag = format!("{}/{} depth {depth}", g.0, g.1);
                assert_eq!(lock.best.score.to_bits(), piped.best.score.to_bits(), "{tag}");
                assert_eq!(lock.best.pose, piped.best.pose, "{tag}");
                assert_eq!(lock.evaluations, piped.evaluations, "{tag}");
                assert_eq!(lock.generations_run, piped.generations_run, "{tag}");
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&lock.best_history), bits(&piped.best_history), "{tag}");
                assert_eq!(
                    lock.batch_trace.iter().sum::<u64>(),
                    piped.batch_trace.iter().sum::<u64>(),
                    "{tag}: total scored items"
                );
            }
        }
    }
}

// ---- property sweep on the synthetic landscape ----

fn sweep_spots(n: usize) -> Vec<Spot> {
    (0..n)
        .map(|i| Spot {
            id: i,
            center: Vec3::new(12.0 * i as f64, 0.0, 0.0),
            normal: Vec3::Z,
            radius: 5.0,
            anchor_atom: 0,
        })
        .collect()
}

fn sweep_evaluator(spots: &[Spot]) -> SyntheticEvaluator {
    SyntheticEvaluator::new(spots.iter().map(|s| s.center + Vec3::new(1.0, 0.5, 0.5)).collect())
}

fn sweep_params(pop: usize, gens: usize, improve: bool, end: EndCondition) -> MetaheuristicParams {
    MetaheuristicParams {
        name: "sweep".into(),
        population_per_spot: pop,
        select: SelectStrategy::TruncationBest { fraction: 0.5 },
        offspring_per_spot: pop,
        improve_fraction: if improve { 0.25 } else { 0.0 },
        improve: if improve {
            ImproveStrategy::HillClimb { steps: 2 }
        } else {
            ImproveStrategy::None
        },
        mutation_prob: 0.3,
        max_shift: 1.0,
        max_angle: 0.4,
        end: end_or_gens(end, gens),
        single_pass: false,
    }
}

fn end_or_gens(end: EndCondition, gens: usize) -> EndCondition {
    match end {
        EndCondition::Generations(_) => EndCondition::Generations(gens),
        c => c,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For generation-bounded runs the pipeline is bit-identical to
    /// lockstep whatever the population, spot count, depth, or seed.
    #[test]
    fn pipelined_is_bit_identical_for_generation_runs(
        seed in any::<u64>(),
        n_spots in 1usize..6,
        pop in 4usize..20,
        gens in 1usize..5,
        improve in any::<bool>(),
        depth in 1usize..5,
    ) {
        let sp = sweep_spots(n_spots);
        let p = sweep_params(pop, gens, improve, EndCondition::Generations(0));
        let mut ev = sweep_evaluator(&sp);
        let lock = metaheur::run(&p, &sp, &mut ev, seed);
        let mut ev = sweep_evaluator(&sp);
        let piped = run_pipelined(
            &p, &sp, &mut ev, seed, &[], &Trace::disabled(),
            &PipelineConfig::with_depth(depth),
        );
        prop_assert_eq!(lock.best.score.to_bits(), piped.best.score.to_bits());
        prop_assert_eq!(lock.best.pose, piped.best.pose);
        prop_assert_eq!(lock.evaluations, piped.evaluations);
        prop_assert_eq!(lock.generations_run, piped.generations_run);
    }

    /// Convergence-ended runs may stop each spot at a different staleness
    /// point than the lockstep global check, but for a fixed seed the
    /// pipeline must land within a small tolerance of the lockstep best.
    #[test]
    fn pipelined_convergence_tracks_lockstep_best(
        seed in any::<u64>(),
        n_spots in 1usize..5,
        depth in 1usize..4,
    ) {
        let sp = sweep_spots(n_spots);
        let p = sweep_params(
            12, 0, false,
            EndCondition::Convergence { patience: 3, max: 12 },
        );
        let mut ev = sweep_evaluator(&sp);
        let lock = metaheur::run(&p, &sp, &mut ev, seed);
        let mut ev = sweep_evaluator(&sp);
        let piped = run_pipelined(
            &p, &sp, &mut ev, seed, &[], &Trace::disabled(),
            &PipelineConfig::with_depth(depth),
        );
        prop_assert!(
            (lock.best.score - piped.best.score).abs() < 1.0,
            "lockstep {} vs pipelined {}", lock.best.score, piped.best.score
        );
        prop_assert!(piped.evaluations > 0);
    }
}

#[test]
fn pipelined_respects_warm_start_seeds() {
    // Streamed admission must still inject warm-start conformations into
    // the right spot's initial population.
    let sp = sweep_spots(3);
    let p = sweep_params(8, 3, false, EndCondition::Generations(0));
    let mut ev = sweep_evaluator(&sp);
    let seeds: Vec<_> = sp
        .iter()
        .map(|s| vsmol::Conformation::new(vsmath::RigidTransform::from_translation(s.center), s.id))
        .collect();
    let lock = metaheur::run_seeded(&p, &sp, &mut ev, 9, &seeds);
    let mut ev = sweep_evaluator(&sp);
    let piped = run_pipelined(
        &p,
        &sp,
        &mut ev,
        9,
        &seeds,
        &Trace::disabled(),
        &PipelineConfig::with_depth(2),
    );
    assert_eq!(lock.best.score.to_bits(), piped.best.score.to_bits());
    assert_eq!(lock.evaluations, piped.evaluations);
}
