//! The paper's quantitative claims, validated against the full-scale
//! reproduction (Tables 6–9 analogs). Paper reference values:
//!
//! | claim | paper | band asserted here |
//! |---|---|---|
//! | Jupiter het-alg gain (T6–7) | 1.01–1.06× | 1.00–1.20× |
//! | Hertz het-alg gain (T8–9) | 1.31–1.56× | 1.25–1.70× |
//! | GPU vs OpenMP speed-up | ~50–120× | > 25× |
//! | speed-up grows with receptor | 2BXG > 2BSM | monotone |
//! | Hertz 2 GPUs ≈ Jupiter 6 GPUs | "equivalent" | within 35% |
//! | M4 best speed-up, M3 cheapest | §5 | exact ordering |

use vscreen::experiment::{hertz_table, jupiter_table, ExperimentScale, TableResult};
use vsmol::Dataset;

fn jt(d: Dataset) -> TableResult {
    jupiter_table(d, ExperimentScale::Full)
}

fn ht(d: Dataset) -> TableResult {
    hertz_table(d, ExperimentScale::Full)
}

#[test]
fn jupiter_heterogeneous_gains_are_small() {
    for d in Dataset::ALL {
        for r in &jt(d).rows {
            let g = r.speedup_het_vs_hom();
            assert!(
                (1.0..1.20).contains(&g),
                "{} {}: Jupiter het/hom {g} outside paper band",
                d.pdb_id(),
                r.metaheuristic
            );
        }
    }
}

#[test]
fn hertz_heterogeneous_gains_are_large() {
    for d in Dataset::ALL {
        for r in &ht(d).rows {
            let g = r.speedup_het_vs_hom();
            assert!(
                (1.25..1.70).contains(&g),
                "{} {}: Hertz het/hom {g} outside paper band (1.31-1.56)",
                d.pdb_id(),
                r.metaheuristic
            );
        }
    }
}

#[test]
fn gpu_speedups_in_the_tens() {
    for d in Dataset::ALL {
        for t in [jt(d), ht(d)] {
            for r in &t.rows {
                let s = r.speedup_openmp_vs_het();
                assert!(
                    s > 25.0 && s < 300.0,
                    "{} {} {}: OpenMP/het {s}",
                    t.system,
                    d.pdb_id(),
                    r.metaheuristic
                );
            }
        }
    }
}

#[test]
fn speedup_grows_with_receptor_size_on_both_systems() {
    // §5: "the speed-up increases with the problem size, and so the
    // multiGPU versions prove to be scalable" (2BXG is 2.7x larger).
    let mean = |t: &TableResult| {
        t.rows.iter().map(|r| r.speedup_openmp_vs_het()).sum::<f64>() / t.rows.len() as f64
    };
    assert!(mean(&jt(Dataset::TwoBxg)) > mean(&jt(Dataset::TwoBsm)), "Jupiter");
    assert!(mean(&ht(Dataset::TwoBxg)) > mean(&ht(Dataset::TwoBsm)), "Hertz");
}

#[test]
fn hertz_two_gpus_equivalent_to_jupiter_six() {
    // §5: "the speed-up factors reported here with two GPUs are equivalent
    // to those reported with 6 GPUs in Jupiter".
    for d in Dataset::ALL {
        let j = jt(d);
        let h = ht(d);
        for (rj, rh) in j.rows.iter().zip(&h.rows) {
            let ratio = rj.het_sys_het_comp_s / rh.het_sys_het_comp_s;
            assert!(
                (0.65..1.55).contains(&ratio),
                "{} {}: Jupiter/Hertz het time ratio {ratio}",
                d.pdb_id(),
                rj.metaheuristic
            );
        }
    }
}

#[test]
fn adding_c2075s_helps_jupiter() {
    // Het system (6 GPUs) under the homogeneous algorithm still beats the
    // 4-GPU homogeneous system (paper T6: 7.01 -> 5.13 etc.).
    for d in Dataset::ALL {
        for r in &jt(d).rows {
            let hom4 = r.homogeneous_system_s.expect("Jupiter rows carry the 4-GPU column");
            assert!(
                r.het_sys_hom_comp_s < hom4,
                "{} {}: 6 GPUs {} not faster than 4 GPUs {}",
                d.pdb_id(),
                r.metaheuristic,
                r.het_sys_hom_comp_s,
                hom4
            );
            // But at most ~1.5x (only 2 modest cards were added).
            assert!(hom4 / r.het_sys_hom_comp_s < 1.6);
        }
    }
}

#[test]
fn workload_ordering_matches_paper_columns() {
    // Within every table: M3 < M1 < M2 << M4 in absolute time, every
    // configuration (paper Tables 6-9 column order).
    for t in [jt(Dataset::TwoBsm), jt(Dataset::TwoBxg), ht(Dataset::TwoBsm), ht(Dataset::TwoBxg)] {
        let by_name = |n: &str| t.rows.iter().find(|r| r.metaheuristic == n).unwrap();
        let (m1, m2, m3, m4) = (by_name("M1"), by_name("M2"), by_name("M3"), by_name("M4"));
        for get in [
            |r: &vscreen::experiment::TableRow| r.openmp_s,
            |r: &vscreen::experiment::TableRow| r.het_sys_hom_comp_s,
            |r: &vscreen::experiment::TableRow| r.het_sys_het_comp_s,
        ] {
            assert!(get(m3) < get(m1), "{}: M3 !< M1", t.title);
            assert!(get(m1) < get(m2), "{}: M1 !< M2", t.title);
            assert!(get(m2) < get(m4), "{}: M2 !< M4", t.title);
            assert!(get(m4) > 10.0 * get(m1), "{}: M4 not dominant", t.title);
        }
    }
}

#[test]
fn m4_reaches_best_speedup_m3_lowest() {
    // §5: more intensive local search => higher speed-up; M4 the extreme.
    for t in [ht(Dataset::TwoBsm), ht(Dataset::TwoBxg)] {
        let sp: Vec<(String, f64)> =
            t.rows.iter().map(|r| (r.metaheuristic.clone(), r.speedup_openmp_vs_het())).collect();
        let m4 = sp.iter().find(|(n, _)| n == "M4").unwrap().1;
        let m3 = sp.iter().find(|(n, _)| n == "M3").unwrap().1;
        for (n, s) in &sp {
            assert!(m4 >= *s, "{}: M4 {m4} < {n} {s}", t.title);
            assert!(m3 <= *s, "{}: M3 {m3} > {n} {s}", t.title);
        }
    }
}

#[test]
fn workload_ratios_track_paper_times() {
    // OpenMP column ratios vs paper Table 6 (2BSM, Jupiter):
    // M2/M1 = 1.62, M3/M1 = 0.507, M4/M1 = 50.3.
    let t = jt(Dataset::TwoBsm);
    let by = |n: &str| t.rows.iter().find(|r| r.metaheuristic == n).unwrap().openmp_s;
    let m1 = by("M1");
    assert!((by("M2") / m1 - 1.62).abs() < 0.25, "M2/M1 {}", by("M2") / m1);
    assert!((by("M3") / m1 - 0.507).abs() < 0.15, "M3/M1 {}", by("M3") / m1);
    assert!((by("M4") / m1 - 50.3).abs() < 7.0, "M4/M1 {}", by("M4") / m1);
}
