//! End-to-end observability contracts: trace determinism across same-seed
//! runs, zero overhead events from a disabled sink, and agreement between
//! the exported chrome trace and the simulated device clocks.

use vscreen::prelude::*;
use vstrace::json::{parse, Value};
use vstrace::{chrome_trace_json, text_summary, Event, Trace};

/// Same seed ⇒ identical event payload streams (the wall-clock stamps are
/// stripped by `payloads()` — they are the only nondeterministic fields).
#[test]
fn same_seed_produces_identical_event_payloads() {
    let run = || {
        let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(3).seed(11).build();
        let spots = screen.spots().to_vec();
        let trace = Trace::new();
        let mut ev = vsched::EvaluatorSpec::SerialCpu.build_traced(screen.scorer(), trace.clone());
        let r = metaheur::run_traced(&metaheur::m1(0.03), &spots, &mut ev, 11, &trace);
        (r.best.score, trace.snapshot().payloads())
    };
    let (best_a, payloads_a) = run();
    let (best_b, payloads_b) = run();
    assert_eq!(best_a.to_bits(), best_b.to_bits());
    assert!(!payloads_a.is_empty());
    assert_eq!(payloads_a, payloads_b);
    // The stream carries the engine's structure: spans plus one
    // GenerationDone per generation.
    assert!(payloads_a.iter().any(|e| matches!(e, Event::SpanBegin { name: "initialize" })));
    assert!(payloads_a.iter().any(|e| matches!(e, Event::GenerationDone { .. })));
}

/// A disabled sink must record nothing anywhere in the stack — engine,
/// evaluator, device scheduler.
#[test]
fn disabled_sink_records_zero_events_end_to_end() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(5).build();
    let node = platform::hertz();
    let trace = Trace::disabled();
    let p = metaheur::m1(0.03);
    let out = screen.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit).traced(&trace));
    assert!(out.best.is_scored());
    assert!(trace.snapshot().is_empty(), "disabled sink must stay empty");
}

/// The exported chrome trace's per-device busy totals agree with the
/// simulated device clocks, and the document parses back.
#[test]
fn exported_trace_agrees_with_device_clocks() {
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(5).build();
    let node = platform::hertz();
    let trace = Trace::new();
    let p = metaheur::m1(0.03);
    let out = screen.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit).traced(&trace));
    let data = trace.snapshot();
    assert_eq!(data.dropped, 0);

    let doc = parse(&chrome_trace_json(&data)).expect("valid chrome trace JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
    for dev in node.gpus() {
        let clock = dev.clock();
        assert!((data.device_busy_s(dev.id() as u32) - clock).abs() <= 1e-9 * clock.max(1.0));
        let busy_us: f64 = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("busy")
                    && e.get("tid").and_then(Value::as_num) == Some(dev.id() as f64)
            })
            .filter_map(|e| e.get("dur").and_then(Value::as_num))
            .sum();
        assert!(
            (busy_us / 1e6 - clock).abs() <= 1e-6 * clock.max(1.0),
            "device {}: {} vs {}",
            dev.id(),
            busy_us / 1e6,
            clock
        );
    }
    // Makespan in the stream matches the run outcome.
    let max_vt = data
        .events()
        .filter_map(|s| match s.event {
            Event::DeviceBusy { vt_end, .. } => Some(vt_end),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    assert!((max_vt - out.virtual_time).abs() <= 1e-9 * out.virtual_time.max(1.0));

    // The text summary renders the same numbers.
    let summary = text_summary(&data);
    assert!(summary.contains("virtual makespan"));
    assert!(summary.contains("Tesla K40c"));
}

/// A learned-oracle run narrates its cost model: `ModelUpdated` events on
/// the stream, the re-seed counter, and a "cost model" section in the
/// text summary — all deterministic across same-seed runs.
#[test]
fn oracle_run_reports_cost_model_in_summary() {
    let run = || {
        let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(2).seed(5).build();
        let node = platform::hertz();
        let trace = Trace::new();
        let p = metaheur::m1(0.1);
        let warmup = vsched::WarmupConfig { iterations: 1, ..Default::default() };
        let strategy = Strategy::Oracle { warmup, divisor: 2 };
        let out = screen.run(RunSpec::on_node(&p, &node, strategy).traced(&trace));
        (out.best.score, trace.snapshot())
    };
    let (best_a, data_a) = run();
    let (best_b, data_b) = run();
    // Oracle re-seeding changes schedules, never scores or event payloads.
    assert_eq!(best_a.to_bits(), best_b.to_bits());
    assert_eq!(data_a.payloads(), data_b.payloads());

    let updates =
        data_a.payloads().into_iter().filter(|e| matches!(e, Event::ModelUpdated { .. })).count();
    assert!(updates > 0, "post-warm-up batches must emit ModelUpdated events");

    let summary = text_summary(&data_a);
    assert!(
        summary.contains("cost model (learned oracle):"),
        "summary must carry the cost-model section:\n{summary}"
    );
    assert!(summary.contains("pair-sweep"), "fits are keyed by kernel class:\n{summary}");
    assert!(summary.contains("re-seeds"), "re-seed count belongs in the section:\n{summary}");
}
