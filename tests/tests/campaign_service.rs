//! End-to-end guarantees of the campaign service: bit-identical
//! determinism under the bursty traffic generator, cache-served
//! resubmission, and job conservation across elastic fleet events.

use vscluster::{
    bursty_traffic, synthetic_library, Campaign, NetModel, ScalePlan, Service, ServiceConfig,
    SimCluster, TrafficConfig,
};
use vscreen::prelude::*;

fn fleet(n: usize) -> SimCluster {
    SimCluster::uniform(n, NetModel::infiniband(), platform::hertz)
}

fn elastic() -> ScalePlan {
    ScalePlan::new().join_at(0.05, platform::hertz()).leave_at(0.18, 1)
}

/// One full bursty run: fresh service, elastic fleet, default traffic.
fn run(traffic_seed: u64) -> vscluster::CampaignReport {
    let mut svc = Service::new(fleet(4), ServiceConfig::default());
    svc.scale(elastic());
    for c in bursty_traffic(&TrafficConfig::default(), traffic_seed) {
        svc.submit(c);
    }
    svc.drain()
}

#[test]
fn same_traffic_seed_yields_bit_identical_reports() {
    let a = run(1234);
    let b = run(1234);
    // Full structural equality: makespan, per-node times, assignment,
    // latency percentiles, utilization — every field must match exactly.
    assert_eq!(a, b);
}

#[test]
fn different_traffic_seed_changes_the_schedule() {
    let a = run(1234);
    let b = run(5678);
    assert_ne!(a, b, "traffic seed must drive arrivals and duplication");
}

#[test]
fn duplicate_resubmission_runs_zero_device_evals() {
    let jobs = synthetic_library(24, &metaheur::m3(1.0), 5);
    let campaign =
        || Campaign::library(3264, 16, jobs.clone(), Strategy::HomogeneousSplit).seed(11);
    let mut svc = Service::new(fleet(4), ServiceConfig::default());
    svc.submit(campaign());
    let cold = svc.drain();
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.device_evals > 0);

    svc.submit(campaign());
    let warm = svc.drain();
    assert_eq!(warm.cache_hits, 24, "every duplicate must be cache-served");
    assert_eq!(warm.device_evals, 0, "warm run must never touch the device");
    assert!(
        warm.makespan < cold.makespan / 100.0,
        "cache hit too slow: {} vs cold {}",
        warm.makespan,
        cold.makespan
    );
}

#[test]
fn elastic_fleet_never_loses_jobs() {
    // Aggressive churn: two joins, two leaves, saturating traffic.
    let cfg =
        TrafficConfig { bulk_campaigns: 3, bulk_jobs: 32, scale: 1.0, ..TrafficConfig::default() };
    let mut svc = Service::new(fleet(4), ServiceConfig::default());
    svc.scale(
        ScalePlan::new()
            .join_at(0.4, platform::hertz())
            .join_at(1.1, platform::jupiter())
            .leave_at(0.9, 0)
            .leave_at(1.6, 2),
    );
    for c in bursty_traffic(&cfg, 99) {
        svc.submit(c);
    }
    let r = svc.drain();
    assert_eq!(r.campaigns_rejected, 0, "traffic must fit the queue");
    assert_eq!(
        r.completed_jobs, r.total_jobs,
        "jobs lost across node churn: {}/{}",
        r.completed_jobs, r.total_jobs
    );
    assert_eq!(r.node_joins, 2);
    assert_eq!(r.node_leaves, 2);
    // Every admitted job landed on a real node or the cache.
    assert!(r.assignment.iter().all(|&n| n == usize::MAX || n < 6));
}
