//! End-to-end integration: dataset → surface spots → scorer →
//! metaheuristic → heterogeneous schedule, across every crate boundary.

use vscreen::prelude::*;

fn quick_screen(seed: u64) -> VirtualScreen {
    VirtualScreen::builder(Dataset::TwoBsm).max_spots(4).seed(seed).build()
}

#[test]
fn full_pipeline_on_both_platforms() {
    let screen = quick_screen(1);
    let params = metaheur::m3(0.1);
    for node in [platform::hertz(), platform::jupiter()] {
        let out = screen.run(RunSpec::on_node(
            &params,
            &node,
            Strategy::HeterogeneousSplit {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
            },
        ));
        assert!(out.best.is_scored(), "{}", node.name());
        assert!(out.virtual_time > 0.0);
        assert_eq!(out.ranked.len(), screen.spots().len());
    }
}

#[test]
fn search_trajectory_is_schedule_invariant() {
    // The cornerstone of the trace-replay methodology: identical results
    // under every strategy and on every platform.
    let screen = quick_screen(2);
    let params = metaheur::m2(0.05);
    let hertz = platform::hertz();
    let jupiter = platform::jupiter();
    let outcomes = [
        screen.run(RunSpec::on_node(&params, &hertz, Strategy::CpuOnly)),
        screen.run(RunSpec::on_node(&params, &hertz, Strategy::HomogeneousSplit)),
        screen.run(RunSpec::on_node(
            &params,
            &hertz,
            Strategy::HeterogeneousSplit {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
            },
        )),
        screen.run(RunSpec::on_node(&params, &hertz, Strategy::DynamicQueue { chunk: 64 })),
        screen.run(RunSpec::on_node(
            &params,
            &hertz,
            Strategy::WorkSteal {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
                divisor: 2,
            },
        )),
        screen.run(RunSpec::on_node(&params, &jupiter, Strategy::HomogeneousSplit)),
        screen.run(RunSpec::cpu(&params, 4)),
    ];
    let reference = &outcomes[0];
    for o in &outcomes[1..] {
        assert_eq!(o.best.score, reference.best.score);
        assert_eq!(o.best.pose, reference.best.pose);
        assert_eq!(o.evaluations, reference.evaluations);
    }
}

#[test]
fn more_search_budget_does_not_worsen_result() {
    let screen = quick_screen(3);
    let p_small = metaheur::m1(0.05);
    let small = screen.run(RunSpec::cpu(&p_small, 4));
    let p_large = metaheur::m1(0.3);
    let large = screen.run(RunSpec::cpu(&p_large, 4));
    assert!(
        large.best.score <= small.best.score + 1e-9,
        "more generations must not hurt: {} vs {}",
        large.best.score,
        small.best.score
    );
}

#[test]
fn best_scores_are_favorable_bindings() {
    // A docking search must find net-attractive (negative-energy) poses.
    let screen = quick_screen(4);
    let p = metaheur::m2(0.1);
    let out = screen.run(RunSpec::cpu(&p, 4));
    assert!(out.best.score < 0.0, "best pose not attractive: {}", out.best.score);
}

#[test]
fn pose_pdb_roundtrips_through_parser() {
    let screen = quick_screen(5);
    let p = metaheur::m1(0.02);
    let out = screen.run(RunSpec::cpu(&p, 2));
    let pdb = screen.pose_pdb(&out.best);
    let parsed = vsmol::pdb::parse(&pdb, "pose").expect("valid PDB");
    assert_eq!(parsed.len(), screen.ligand().len());
    // Element composition is preserved through the roundtrip.
    for e in vsmol::Element::ALL {
        assert_eq!(
            parsed.count_element(e),
            screen.ligand().count_element(e),
            "element {e} count changed"
        );
    }
}

#[test]
fn real_pdb_input_drives_the_pipeline() {
    // Users with genuine Protein Data Bank files go through vsmol::pdb.
    let rec_text = vsmol::pdb::write(&vsmol::synth::synth_receptor("real-ish", 700, 9));
    let lig_text = vsmol::pdb::write(&vsmol::synth::synth_ligand("lig", 12, 10));
    let receptor = vsmol::pdb::parse(&rec_text, "receptor").unwrap();
    let ligand = vsmol::pdb::parse(&lig_text, "ligand").unwrap();
    let screen = VirtualScreen::from_molecules(receptor, ligand).max_spots(3).build();
    let p = metaheur::m1(0.03);
    let out = screen.run(RunSpec::cpu(&p, 2));
    assert!(out.best.is_scored());
}

#[test]
fn different_seeds_explore_differently_but_both_bind() {
    let p = metaheur::m1(0.1);
    let a = quick_screen(100).run(RunSpec::cpu(&p, 4));
    let b = quick_screen(200).run(RunSpec::cpu(&p, 4));
    assert_ne!(a.best.pose, b.best.pose, "seeds must matter");
    assert!(a.best.score < 0.0 && b.best.score < 0.0);
}

#[test]
fn device_stats_account_for_all_work() {
    let screen = quick_screen(6);
    let node = platform::hertz();
    let params = metaheur::m1(0.05);
    let out = screen.run(RunSpec::on_node(&params, &node, Strategy::HomogeneousSplit));
    let total_items: u64 = node.gpus().iter().map(|g| g.stats().items).sum();
    assert_eq!(total_items, out.evaluations, "every evaluation must be charged to a device");
}
