//! Placeholder.

#![forbid(unsafe_code)]
